let block_size = 4096
let inode_size = 256
let inodes_per_block = block_size / inode_size
let bits_per_block = block_size * 8
let magic = 0x46454152L (* "RAEF" read little-endian *)
let version = 1
let default_journal_blocks = 64
let pointers_per_block = block_size / 4
let direct_pointers = 12

let max_file_blocks =
  direct_pointers + pointers_per_block + (pointers_per_block * pointers_per_block)

let max_file_size = max_file_blocks * block_size

type geometry = {
  nblocks : int;
  ninodes : int;
  journal_start : int;
  journal_len : int;
  inode_bitmap_start : int;
  inode_bitmap_len : int;
  block_bitmap_start : int;
  block_bitmap_len : int;
  inode_table_start : int;
  inode_table_len : int;
  data_start : int;
}

let ceil_div a b = (a + b - 1) / b

let compute ~nblocks ~ninodes ?(journal_len = default_journal_blocks) () =
  if nblocks <= 0 then Error "nblocks must be positive"
  else if ninodes <= 0 then Error "ninodes must be positive"
  else if journal_len < 0 then Error "journal_len must be non-negative"
  else
    let journal_start = 1 in
    let inode_bitmap_start = journal_start + journal_len in
    let inode_bitmap_len = ceil_div (ninodes + 1) bits_per_block in
    let block_bitmap_start = inode_bitmap_start + inode_bitmap_len in
    let block_bitmap_len = ceil_div nblocks bits_per_block in
    let inode_table_start = block_bitmap_start + block_bitmap_len in
    let inode_table_len = ceil_div ninodes inodes_per_block in
    let data_start = inode_table_start + inode_table_len in
    if data_start >= nblocks then Error "disk too small: no data blocks left after metadata"
    else
      Ok
        {
          nblocks;
          ninodes;
          journal_start;
          journal_len;
          inode_bitmap_start;
          inode_bitmap_len;
          block_bitmap_start;
          block_bitmap_len;
          inode_table_start;
          inode_table_len;
          data_start;
        }

let inode_location g ino =
  if ino < 1 || ino > g.ninodes then
    invalid_arg (Printf.sprintf "Layout.inode_location: inode %d outside [1,%d]" ino g.ninodes);
  let index = ino - 1 in
  (g.inode_table_start + (index / inodes_per_block), index mod inodes_per_block * inode_size)

let data_block_count g = g.nblocks - g.data_start

let pp_geometry ppf g =
  Format.fprintf ppf
    "geometry { nblocks=%d; ninodes=%d; journal=%d+%d; ibmap=%d+%d; bbmap=%d+%d; itable=%d+%d; \
     data=%d.. }"
    g.nblocks g.ninodes g.journal_start g.journal_len g.inode_bitmap_start g.inode_bitmap_len
    g.block_bitmap_start g.block_bitmap_len g.inode_table_start g.inode_table_len g.data_start
