open Rae_util

type t = { read : int -> bytes; sb : Superblock.t }

type error = { context : string; problem : string }

let error_to_string e = Printf.sprintf "%s: %s" e.context e.problem
let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)
let err context fmt = Format.kasprintf (fun problem -> Error { context; problem }) fmt

let attach read =
  match Superblock.decode (read 0) with
  | Ok sb -> Ok { read; sb }
  | Error e -> err "superblock" "%s" (Superblock.error_to_string e)
  | exception Codec.Decode_error msg -> err "superblock" "decode error: %s" msg

let geometry t = t.sb.Superblock.geometry

let region_blocks t ~start ~len = List.init len (fun i -> t.read (start + i))

let load_inode_bitmap t =
  let g = geometry t in
  let blocks = region_blocks t ~start:g.Layout.inode_bitmap_start ~len:g.Layout.inode_bitmap_len in
  match Bitmap.of_blocks blocks ~nbits:(g.Layout.ninodes + 1) with
  | Error msg -> err "inode bitmap" "%s" msg
  | Ok bm ->
      if not (Bitmap.test bm 0) then err "inode bitmap" "bit 0 (invalid inode) is clear"
      else Ok bm

let load_block_bitmap t =
  let g = geometry t in
  let blocks = region_blocks t ~start:g.Layout.block_bitmap_start ~len:g.Layout.block_bitmap_len in
  match Bitmap.of_blocks blocks ~nbits:g.Layout.nblocks with
  | Error msg -> err "block bitmap" "%s" msg
  | Ok bm ->
      let rec check blk =
        if blk >= g.Layout.data_start then Ok bm
        else if not (Bitmap.test bm blk) then
          err "block bitmap" "metadata block %d is marked free" blk
        else check (blk + 1)
      in
      check 0

let read_inode_opt t ino =
  let g = geometry t in
  if ino < 1 || ino > g.Layout.ninodes then err "inode" "inode %d out of range" ino
  else
    let blk, off = Layout.inode_location g ino in
    let b = t.read blk in
    if Inode.is_free_slot b ~pos:off then Ok None
    else
      match Inode.decode b ~pos:off ~ino with
      | Ok inode -> Ok (Some inode)
      | Error e -> err "inode" "inode %d: %s" ino (Inode.error_to_string e)

let read_inode t ino =
  match read_inode_opt t ino with
  | Error e -> Error e
  | Ok (Some inode) -> Ok inode
  | Ok None -> err "inode" "inode %d is a free slot" ino

let valid_data_block g blk = blk >= g.Layout.data_start && blk < g.Layout.nblocks

let check_ptr g ~what blk =
  if blk = 0 || valid_data_block g blk then Ok blk
  else err what "block pointer %d outside data region [%d,%d)" blk g.Layout.data_start g.Layout.nblocks

let read_ptr_block t blk =
  (* An indirect block: array of u32 pointers. *)
  t.read blk

let ptr_at b i = Codec.get_u32_int b (4 * i)

let file_block t inode idx =
  let g = geometry t in
  let ppb = Layout.pointers_per_block in
  if idx < 0 || idx >= Layout.max_file_blocks then err "file" "logical block %d out of range" idx
  else if idx < Layout.direct_pointers then
    check_ptr g ~what:"direct pointer" inode.Inode.direct.(idx)
  else
    let idx = idx - Layout.direct_pointers in
    if idx < ppb then
      if inode.Inode.indirect = 0 then Ok 0
      else
        match check_ptr g ~what:"indirect pointer" inode.Inode.indirect with
        | Error e -> Error e
        | Ok blk -> check_ptr g ~what:"indirect entry" (ptr_at (read_ptr_block t blk) idx)
    else
      let idx = idx - ppb in
      if inode.Inode.double_indirect = 0 then Ok 0
      else
        match check_ptr g ~what:"double-indirect pointer" inode.Inode.double_indirect with
        | Error e -> Error e
        | Ok dblk -> (
            let l1 = ptr_at (read_ptr_block t dblk) (idx / ppb) in
            match check_ptr g ~what:"double-indirect L1 entry" l1 with
            | Error e -> Error e
            | Ok 0 -> Ok 0
            | Ok l1blk -> check_ptr g ~what:"double-indirect L2 entry" (ptr_at (read_ptr_block t l1blk) (idx mod ppb)))

let read_file_block t inode idx =
  match file_block t inode idx with
  | Error e -> Error e
  | Ok 0 -> Ok (Bytes.make Layout.block_size '\000')
  | Ok blk -> Ok (t.read blk)

let read_file t inode =
  let size = inode.Inode.size in
  let buf = Bytes.create size in
  let nblocks = Inode.blocks_for_size size in
  let rec go idx =
    if idx >= nblocks then Ok (Bytes.to_string buf)
    else
      match read_file_block t inode idx with
      | Error e -> Error e
      | Ok block ->
          let off = idx * Layout.block_size in
          let len = min Layout.block_size (size - off) in
          Bytes.blit block 0 buf off len;
          go (idx + 1)
  in
  go 0

let iter_file_blocks t inode ~f =
  let g = geometry t in
  let ppb = Layout.pointers_per_block in
  let nblocks = Inode.blocks_for_size inode.Inode.size in
  let ( let* ) = Result.bind in
  (* Direct pointers. *)
  let rec directs i =
    if i >= Layout.direct_pointers || i >= nblocks then Ok ()
    else
      let blk = inode.Inode.direct.(i) in
      let* _ = check_ptr g ~what:"direct pointer" blk in
      let* () = if blk <> 0 then f ~idx:i ~phys:blk else Ok () in
      directs (i + 1)
  in
  let* () = directs 0 in
  (* Single indirect. *)
  let* () =
    if inode.Inode.indirect = 0 then Ok ()
    else
      let* iblk = check_ptr g ~what:"indirect pointer" inode.Inode.indirect in
      let* () = f ~idx:(-1) ~phys:iblk in
      let b = read_ptr_block t iblk in
      let rec entries i =
        if i >= ppb || Layout.direct_pointers + i >= nblocks then Ok ()
        else
          let blk = ptr_at b i in
          let* _ = check_ptr g ~what:"indirect entry" blk in
          let* () = if blk <> 0 then f ~idx:(Layout.direct_pointers + i) ~phys:blk else Ok () in
          entries (i + 1)
      in
      entries 0
  in
  (* Double indirect. *)
  if inode.Inode.double_indirect = 0 then Ok ()
  else
    let* dblk = check_ptr g ~what:"double-indirect pointer" inode.Inode.double_indirect in
    let* () = f ~idx:(-1) ~phys:dblk in
    let l1 = read_ptr_block t dblk in
    let base = Layout.direct_pointers + ppb in
    let rec level1 i =
      if i >= ppb || base + (i * ppb) >= nblocks then Ok ()
      else
        let l1blk = ptr_at l1 i in
        let* _ = check_ptr g ~what:"double-indirect L1 entry" l1blk in
        if l1blk = 0 then level1 (i + 1)
        else
          let* () = f ~idx:(-1) ~phys:l1blk in
          let l2 = read_ptr_block t l1blk in
          let rec level2 j =
            if j >= ppb || base + (i * ppb) + j >= nblocks then Ok ()
            else
              let blk = ptr_at l2 j in
              let* _ = check_ptr g ~what:"double-indirect L2 entry" blk in
              let* () = if blk <> 0 then f ~idx:(base + (i * ppb) + j) ~phys:blk else Ok () in
              level2 (j + 1)
          in
          let* () = level2 0 in
          level1 (i + 1)
    in
    level1 0
