(** Allocation bitmaps (inode and block), ext-style: one bit per object,
    packed little-endian within bytes, spanning one or more disk blocks.

    The in-memory form is loaded from the bitmap region at mount and written
    back through the journal on allocation changes.  The shadow rebuilds its
    own copy from disk during recovery and *validates* the base's allocation
    decisions against it (constrained mode, paper §3.2). *)

type t

val create : nbits:int -> t
(** All bits clear. *)

val nbits : t -> int
val copy : t -> t
val test : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val set_result : t -> int -> (unit, string) result
(** Like {!set} but reports double-allocation instead of silently setting —
    the shadow's invariant-checking allocator uses this. *)

val clear_result : t -> int -> (unit, string) result

val find_free : t -> from:int -> int option
(** First clear bit at index >= [from] (wrapping is the caller's policy). *)

val count_set : t -> int
val count_free : t -> int

val to_blocks : t -> block_size:int -> bytes list
(** Serialise; the tail of the last block (bits beyond [nbits]) is all-ones,
    matching ext2's convention that out-of-range bits read as allocated. *)

val of_blocks : bytes list -> nbits:int -> (t, string) result
(** Parse; fails if the blocks cannot hold [nbits] or padding bits are not
    all-ones (a corruption signal fsck reports). *)

val of_blocks_lenient : bytes list -> nbits:int -> (t, string) result
(** Like {!of_blocks} but ignores padding bits — the base filesystem's mount
    path, which (deliberately, per the paper's contrast) checks less. *)

val equal : t -> t -> bool
val iter_set : t -> (int -> unit) -> unit
val pp : Format.formatter -> t -> unit
