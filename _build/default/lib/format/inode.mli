(** On-disk inodes: 256 bytes, checksummed, with 12 direct block pointers,
    one single-indirect and one double-indirect pointer — the classic
    ext2/ext4 shape the paper's crafted-image bugs attack (out-of-range
    pointers, bad link counts, impossible sizes).

    The checksum is seeded with the inode number, so an inode blitted to the
    wrong table slot fails verification (ext4's metadata_csum does the
    same). *)

type t = {
  kind : Rae_vfs.Types.kind;
  mode : int;
  nlink : int;
  size : int;
  mtime : int64;
  ctime : int64;
  direct : int array;  (** length {!Layout.direct_pointers}; 0 = hole *)
  indirect : int;  (** 0 = absent *)
  double_indirect : int;
  generation : int;
}

type error =
  | Bad_kind of int
  | Bad_checksum of { ino : int }
  | Bad_field of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val zero : t
(** An all-zero (free) inode slot decodes to [zero] fields; use
    {!is_free_slot} to detect it. *)

val empty : Rae_vfs.Types.kind -> mode:int -> time:int64 -> t
(** A fresh inode of the given kind: size 0, nlink 1 (2 for directories set
    by the caller once ".." exists), no blocks. *)

val is_free_slot : bytes -> pos:int -> bool
(** True when the 256-byte slot is all zeroes (never-used inode). *)

val encode : t -> ino:int -> bytes -> pos:int -> unit
(** Serialise into a 256-byte slot at [pos]. *)

val decode : bytes -> pos:int -> ino:int -> (t, error) result
(** Parse with checksum and field validation (kind code, non-negative
    size/nlink, pointer fields present only where the kind allows). *)

val decode_nocheck : bytes -> pos:int -> t
(** Parse without verifying the checksum — the base filesystem's fast path
    (the deliberate base/shadow asymmetry from paper §3.3). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val blocks_for_size : int -> int
(** Number of data blocks a file of the given byte size occupies (holes not
    accounted; used for summary checks). *)
