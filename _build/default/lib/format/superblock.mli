(** The superblock: block 0 of every rfs image.

    Carries the geometry, allocation summaries, the mount state and a
    CRC32C over the whole structure.  [decode] performs full validation —
    it is the first line of defence against the crafted-image bug class the
    paper's study highlights (images that bypass fsck and crash the
    kernel). *)

type state = Clean | Dirty

val state_to_string : state -> string

type t = {
  geometry : Layout.geometry;
  free_blocks : int;
  free_inodes : int;
  mount_count : int;
  state : state;
  fs_time : int64;  (** persisted logical clock (operation counter) *)
  generation : int64;  (** bumped on every superblock write *)
}

type error =
  | Bad_magic of int64
  | Bad_version of int
  | Bad_checksum
  | Bad_block_size of int
  | Bad_geometry of string
  | Bad_state of int
  | Bad_counts of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val encode : t -> bytes
(** Serialise to one block, computing the checksum. *)

val decode : bytes -> (t, error) result
(** Parse and fully validate: magic, version, checksum, block size, region
    layout consistency (regions in order, non-overlapping, within the
    device), free counts within range. *)

val decode_unchecked : bytes -> (t, error) result
(** Parse with only magic/version/checksum verification — used by tests and
    by {!Rae_fsck} to report *which* geometry field is inconsistent rather
    than failing wholesale. *)

val make : Layout.geometry -> free_blocks:int -> free_inodes:int -> t
(** A fresh clean superblock at logical time 0. *)

val with_state : t -> state -> t
val pp : Format.formatter -> t -> unit
