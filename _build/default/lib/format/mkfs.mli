(** Filesystem creation (mkfs.rfs).

    Writes a fresh image: superblock, bitmaps with the metadata region and
    the root directory block allocated, an inode table containing only the
    root directory inode, and an empty root directory block holding "." and
    "..".  The journal region is left untouched — callers format it with
    {!Rae_journal.Journal.format} (layering: this library does not depend on
    the journal). *)

val format :
  Rae_block.Device.t -> ninodes:int -> ?journal_len:int -> unit -> (Superblock.t, string) result
(** [format dev ~ninodes ()] lays out the whole device.  Fails when the
    device is too small for the metadata plus one data block. *)

val default_ninodes : nblocks:int -> int
(** One inode per 4 data blocks, minimum 16 — a bytes-per-inode heuristic
    like mke2fs. *)
