(** Directory entry blocks, ext2-style.

    A directory's data blocks each hold a chain of variable-length records:
    {v
      +--------+---------+----------+------+----------------+
      | ino u32| rec_len | name_len | kind | name (padded)  |
      +--------+---------+----------+------+----------------+
    v}
    [rec_len] links to the next record; the final record's [rec_len] reaches
    exactly the end of the block.  [ino = 0] marks reclaimable space.
    Deletion merges a record into its predecessor by extending the
    predecessor's [rec_len], exactly as ext2 does.

    This encoding is the main playground of the crafted-image bug class:
    a [rec_len] of 0 loops the kernel, a [rec_len] overshooting the block
    reads out of bounds, a [name_len] exceeding [rec_len] walks into the
    next record.  {!fold} validates all of these; the [_nocheck] variants
    mimic the base filesystem's trusting fast path. *)

type entry = { ino : int; kind_code : int; name : string }

type error =
  | Misaligned of { offset : int }
  | Bad_rec_len of { offset : int; rec_len : int }
  | Overrun of { offset : int; rec_len : int }
  | Bad_name_len of { offset : int; name_len : int; rec_len : int }
  | Bad_name of { offset : int; name : string }
  | Bad_kind_code of { offset : int; code : int }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val empty_block : unit -> bytes
(** A fresh directory block: one free record spanning the block. *)

val record_size : string -> int
(** Bytes a live record for [name] needs (header + padded name). *)

val fold : bytes -> init:'a -> f:('a -> entry -> 'a) -> ('a, error) result
(** Validated traversal of the live entries of one block. *)

val list : bytes -> (entry list, error) result
(** Live entries in block order. *)

val list_nocheck : bytes -> entry list
(** Best-effort traversal that stops at the first malformed record instead
    of reporting it — the base's fast path.  On a crafted block this
    silently drops entries; that asymmetry is exploited by the injected
    bug [ext4_dx_find_entry] analogue. *)

val find : bytes -> string -> (entry, error) result option
(** [find block name] is [None] when absent, [Some (Ok e)] when found,
    [Some (Error _)] when the block is malformed. *)

val find_nocheck : bytes -> string -> entry option

val insert : bytes -> name:string -> ino:int -> kind_code:int -> bool
(** Insert into free space, splitting a live record's slack if needed;
    [false] when the block has no room.  The caller guarantees [name] is
    not already present. *)

val remove : bytes -> string -> bool
(** Remove by name, merging the record into its predecessor; [false] when
    absent. *)

val set_entry_ino : bytes -> string -> int -> bool
(** [set_entry_ino block name ino] rewrites the inode field of the record
    for [name] in place; [false] when absent.  Used to retarget ".." when a
    directory moves to a new parent. *)

val count : bytes -> int
(** Live entries in the block ([0] on malformed blocks). *)

val free_bytes : bytes -> int
(** Reusable space: free records plus live records' slack. *)

val validate : bytes -> (unit, error) result
