type symptom =
  | Oops_or_bug
  | Warn_hit
  | Data_corruption
  | Performance_issue
  | Permission_issue
  | Freeze_or_deadlock

type source = Bugzilla | Reported_by_tag

type record = {
  id : int;
  title : string;
  fix_year : int;
  subsystem : string;
  source : source;
  has_reproducer : bool;
  involves_threading : bool;
  involves_inflight_io : bool;
  symptom_in_commit : symptom option;
  analyzable : bool;
}

type determinism = Deterministic | Non_deterministic | Unknown_determinism
type consequence = No_crash | Crash | Warn | Unknown_consequence

let classify_determinism r =
  if not r.analyzable then Unknown_determinism
  else if r.involves_threading || r.involves_inflight_io || not r.has_reproducer then
    Non_deterministic
  else Deterministic

let classify_consequence r =
  match r.symptom_in_commit with
  | None -> Unknown_consequence
  | Some Oops_or_bug -> Crash
  | Some Warn_hit -> Warn
  | Some (Data_corruption | Performance_issue | Permission_issue | Freeze_or_deadlock) -> No_crash

let determinism_to_string = function
  | Deterministic -> "Deterministic"
  | Non_deterministic -> "Non-Deterministic"
  | Unknown_determinism -> "Unknown"

let consequence_to_string = function
  | No_crash -> "No Crash"
  | Crash -> "Crash"
  | Warn -> "WARN"
  | Unknown_consequence -> "Unknown"

let all_determinism = [ Deterministic; Non_deterministic; Unknown_determinism ]
let all_consequence = [ No_crash; Crash; Warn; Unknown_consequence ]

let is_detected_at_runtime = function
  | Crash | Warn -> true
  | No_crash | Unknown_consequence -> false
