(** The 256-bug corpus.

    The paper's study collects 256 ext4 bugs "by filtering the ext4
    subtree's git log with the mentioning of 'bugzilla' or 'reported by'
    ... since 2013" and categorises them.  The real commit corpus is not
    redistributable here; this module synthesises a corpus whose *raw
    attributes* (reproducer availability, threading/in-flight-IO
    involvement, commit-stated symptom, fix year, subsystem) are generated
    so that the paper's published aggregates — every cell of Table 1 and
    the per-year series of Figure 1 — fall out of the {!Taxonomy}
    classifiers.  The table/figure generators therefore exercise the same
    classification pipeline the authors ran, not hard-coded constants.

    Generation is deterministic: [records ()] always returns the same 256
    records. *)

val first_year : int
(** 2013. *)

val last_year : int
(** 2023. *)

val records : unit -> Taxonomy.record list
(** The corpus, sorted by id; exactly 256 records. *)

val size : int
