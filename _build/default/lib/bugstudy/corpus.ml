open Taxonomy

let first_year = 2013
let last_year = 2023
let size = 256

(* Per-year deterministic-bug matrix reconstructed from Figure 1's shape
   under Table 1's row constraints: columns are
   (crash, no_crash, warn, unknown) and the totals are 78/68/11/8. *)
let det_matrix =
  [
    (2013, (4, 3, 0, 1));
    (2014, (5, 4, 0, 0));
    (2015, (5, 4, 1, 0));
    (2016, (5, 5, 0, 1));
    (2017, (6, 5, 1, 0));
    (2018, (6, 6, 0, 1));
    (2019, (8, 6, 1, 1));
    (2020, (8, 8, 1, 1));
    (2021, (10, 8, 2, 1));
    (2022, (12, 10, 3, 1));
    (2023, (9, 9, 2, 1));
  ]

(* Non-deterministic bugs per year (Figure 1 plots only deterministic
   bugs, so only the Table 1 column totals 31/26/19/7 constrain these). *)
let nondet_years = [ 5; 5; 6; 6; 7; 7; 8; 9; 10; 11; 9 ]
let nondet_consequences = (26, 31, 19, 7) (* crash, no_crash, warn, unknown *)

(* Unknown-determinism bugs: 5 no-crash, 2 crash, 1 warn, 0 unknown. *)
let unknown_det = [ (2016, `No_crash); (2017, `No_crash); (2018, `Crash); (2019, `No_crash);
                    (2020, `Warn); (2021, `No_crash); (2022, `Crash); (2023, `No_crash) ]

let subsystems =
  [|
    "extents"; "jbd2"; "dir index"; "mballoc"; "inline data"; "resize"; "xattr"; "fast commit";
    "ioctl"; "dax"; "encryption"; "orphan list"; "bitmap"; "punch hole";
  |]

let crash_titles =
  [|
    "NULL pointer dereference in %s path";
    "use-after-free in %s handling";
    "BUG_ON hit during %s operation";
    "out-of-bounds access parsing %s structures";
    "kernel oops when %s metadata is crafted";
  |]

let warn_titles = [| "WARN_ON triggered in %s code"; "WARN_ONCE reached during %s update" |]

let nocrash_titles =
  [|
    "data corruption via stale %s state";
    "performance regression in %s path";
    "wrong permissions exposed through %s";
    "freeze waiting on %s lock";
    "deadlock between %s and writeback";
  |]

let unknown_titles = [| "fix bogus %s accounting"; "harden %s against invalid input" |]

let symptom_of = function
  | `Crash -> Some Oops_or_bug
  | `Warn -> Some Warn_hit
  | `No_crash_data -> Some Data_corruption
  | `No_crash_perf -> Some Performance_issue
  | `No_crash_perm -> Some Permission_issue
  | `No_crash_freeze -> Some Freeze_or_deadlock
  | `Unknown -> None

let title_for rng kind subsystem =
  let pool =
    match kind with
    | `Crash -> crash_titles
    | `Warn -> warn_titles
    | `No_crash_data | `No_crash_perf | `No_crash_perm | `No_crash_freeze -> nocrash_titles
    | `Unknown -> unknown_titles
  in
  Printf.sprintf (Scanf.format_from_string (Rae_util.Rng.pick rng pool) "%s") subsystem

(* Rotate the No Crash sub-symptoms so the corpus covers them all. *)
let nocrash_variant i =
  match i mod 4 with
  | 0 -> `No_crash_data
  | 1 -> `No_crash_perf
  | 2 -> `No_crash_perm
  | _ -> `No_crash_freeze

let records () =
  let rng = Rae_util.Rng.create 0xB065L in
  let next_id = ref 0 in
  let acc = ref [] in
  let emit ~year ~kind ~det =
    let id = !next_id in
    incr next_id;
    let subsystem = Rae_util.Rng.pick rng subsystems in
    (* Attributes chosen so the classifiers reproduce (det, kind). *)
    let analyzable = det <> `Unknown_det in
    let has_reproducer, involves_threading, involves_inflight_io =
      match det with
      | `Det -> (true, false, false)
      | `Unknown_det ->
          (* Unanalyzable commits: attribute values are irrelevant to the
             classifier; keep them plausible. *)
          (false, false, false)
      | `Nondet -> (
          (* The paper's three non-determinism reasons, all represented. *)
          match Rae_util.Rng.int rng 3 with
          | 0 -> (false, false, false) (* no reproducer *)
          | 1 -> (true, true, false) (* threading *)
          | _ -> (true, false, true) (* multiple inflight requests *))
    in
    let record =
      {
        id;
        title = title_for rng kind subsystem;
        fix_year = year;
        subsystem;
        source = (if Rae_util.Rng.bool rng then Bugzilla else Reported_by_tag);
        has_reproducer;
        involves_threading;
        involves_inflight_io;
        symptom_in_commit = symptom_of kind;
        analyzable;
      }
    in
    acc := record :: !acc
  in
  (* Deterministic bugs, year by year, per the Figure 1 matrix. *)
  List.iter
    (fun (year, (crash, no_crash, warn, unknown)) ->
      for _ = 1 to crash do emit ~year ~kind:`Crash ~det:`Det done;
      for i = 1 to no_crash do emit ~year ~kind:(nocrash_variant i) ~det:`Det done;
      for _ = 1 to warn do emit ~year ~kind:`Warn ~det:`Det done;
      for _ = 1 to unknown do emit ~year ~kind:`Unknown ~det:`Det done)
    det_matrix;
  (* Non-deterministic bugs: consequences first, years round-robin. *)
  let ncrash, nnocrash, nwarn, nunknown = nondet_consequences in
  let nondet_kinds =
    List.init ncrash (fun _ -> `Crash)
    @ List.init nnocrash nocrash_variant
    @ List.init nwarn (fun _ -> `Warn)
    @ List.init nunknown (fun _ -> `Unknown)
  in
  let years_cycle =
    List.concat (List.mapi (fun i n -> List.init n (fun _ -> first_year + i)) nondet_years)
  in
  List.iter2 (fun kind year -> emit ~year ~kind ~det:`Nondet) nondet_kinds years_cycle;
  (* Unknown-determinism bugs. *)
  List.iter
    (fun (year, kind) ->
      emit ~year
        ~kind:(match kind with `Crash -> `Crash | `Warn -> `Warn | `No_crash -> nocrash_variant year)
        ~det:`Unknown_det)
    unknown_det;
  List.rev !acc
