(** The bug-study taxonomy (paper §2.1, Table 1).

    A bug record carries the *raw attributes* one can extract from a fix
    commit and its bugzilla/report thread; the classifiers below implement
    the paper's stated methodology:

    - determinism: "bugs that do not have reproducers, or are related to
      the interaction with IO (e.g., multiple inflight requests), or are
      related to threading, are classified as non-deterministic";
      commits without enough analyzable information are Unknown;
    - consequence: "bugs are classified as Unknown in their consequence
      when the commit message does not contain clear clues of external
      symptoms"; WARN means the bug hits a WARN_() path; Crash means an
      oops/BUG; everything else observable (data corruption, performance,
      permission leaks, freezes, deadlocks) is No Crash. *)

type symptom =
  | Oops_or_bug  (** NULL deref, use-after-free, BUG_ON — a kernel crash *)
  | Warn_hit  (** reaches a WARN_ON/WARN_ONCE path *)
  | Data_corruption
  | Performance_issue
  | Permission_issue
  | Freeze_or_deadlock

type source = Bugzilla | Reported_by_tag

type record = {
  id : int;
  title : string;
  fix_year : int;
  subsystem : string;  (** e.g. "extents", "jbd2", "dir index" *)
  source : source;
  has_reproducer : bool;
  involves_threading : bool;
  involves_inflight_io : bool;
  symptom_in_commit : symptom option;  (** None: no clear external symptom stated *)
  analyzable : bool;  (** false: not even determinism can be judged *)
}

type determinism = Deterministic | Non_deterministic | Unknown_determinism
type consequence = No_crash | Crash | Warn | Unknown_consequence

val classify_determinism : record -> determinism
val classify_consequence : record -> consequence

val determinism_to_string : determinism -> string
val consequence_to_string : consequence -> string

val all_determinism : determinism list
val all_consequence : consequence list
(** In Table 1's column order: No Crash, Crash, WARN, Unknown. *)

val is_detected_at_runtime : consequence -> bool
(** Crash and WARN are the consequences a runtime detector sees — the
    paper's "89/165 detectable" denominator logic. *)
