open Taxonomy

type cell_counts = { no_crash : int; crash : int; warn : int; unknown : int }

let zero = { no_crash = 0; crash = 0; warn = 0; unknown = 0 }

let add_consequence c = function
  | No_crash -> { c with no_crash = c.no_crash + 1 }
  | Crash -> { c with crash = c.crash + 1 }
  | Warn -> { c with warn = c.warn + 1 }
  | Unknown_consequence -> { c with unknown = c.unknown + 1 }

let cell_total c = c.no_crash + c.crash + c.warn + c.unknown

type table1 = {
  deterministic : cell_counts;
  non_deterministic : cell_counts;
  unknown_det : cell_counts;
}

let table1 records =
  List.fold_left
    (fun acc r ->
      let consequence = classify_consequence r in
      match classify_determinism r with
      | Deterministic -> { acc with deterministic = add_consequence acc.deterministic consequence }
      | Non_deterministic ->
          { acc with non_deterministic = add_consequence acc.non_deterministic consequence }
      | Unknown_determinism -> { acc with unknown_det = add_consequence acc.unknown_det consequence })
    { deterministic = zero; non_deterministic = zero; unknown_det = zero }
    records

let grand_total t =
  cell_total t.deterministic + cell_total t.non_deterministic + cell_total t.unknown_det

let detectable_deterministic t = t.deterministic.crash + t.deterministic.warn

let fig1 records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if classify_determinism r = Deterministic then
        let cur = try Hashtbl.find tbl r.fix_year with Not_found -> zero in
        Hashtbl.replace tbl r.fix_year (add_consequence cur (classify_consequence r)))
    records;
  Hashtbl.fold (fun year counts acc -> (year, counts) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_table1 ppf t =
  let row name c =
    Format.fprintf ppf "%-18s %9d %7d %6d %9d %7d@," name c.no_crash c.crash c.warn c.unknown
      (cell_total c)
  in
  Format.fprintf ppf "@[<v>%-18s %9s %7s %6s %9s %7s@," "Determinism" "No Crash" "Crash" "WARN"
    "Unknown" "Total";
  Format.fprintf ppf "%s@," (String.make 62 '-');
  row "Deterministic" t.deterministic;
  row "Non-Deterministic" t.non_deterministic;
  row "Unknown" t.unknown_det;
  Format.fprintf ppf "%s@," (String.make 62 '-');
  let total =
    List.fold_left
      (fun acc c ->
        {
          no_crash = acc.no_crash + c.no_crash;
          crash = acc.crash + c.crash;
          warn = acc.warn + c.warn;
          unknown = acc.unknown + c.unknown;
        })
      zero
      [ t.deterministic; t.non_deterministic; t.unknown_det ]
  in
  row "Total" total;
  Format.fprintf ppf "@]"

let pp_fig1 ppf series =
  Format.fprintf ppf "@[<v>Deterministic ext4 bugs by year of fix (Crash/WARN/NoCrash/Unknown):@,";
  List.iter
    (fun (year, c) ->
      let bar n ch = String.make n ch in
      Format.fprintf ppf "%d |%s%s%s%s| %2d  (C=%d W=%d N=%d U=%d)@," year
        (bar c.crash '#') (bar c.warn 'w') (bar c.no_crash '.') (bar c.unknown '?')
        (cell_total c) c.crash c.warn c.no_crash c.unknown)
    series;
  Format.fprintf ppf "legend: # Crash, w WARN, . No Crash, ? Unknown@]"
