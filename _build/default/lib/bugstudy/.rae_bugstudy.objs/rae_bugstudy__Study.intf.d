lib/bugstudy/study.mli: Format Taxonomy
