lib/bugstudy/corpus.ml: List Printf Rae_util Scanf Taxonomy
