lib/bugstudy/taxonomy.mli:
