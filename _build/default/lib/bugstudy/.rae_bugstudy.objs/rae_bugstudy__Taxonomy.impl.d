lib/bugstudy/taxonomy.ml:
