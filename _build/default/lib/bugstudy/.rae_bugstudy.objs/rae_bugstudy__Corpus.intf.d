lib/bugstudy/corpus.mli: Taxonomy
