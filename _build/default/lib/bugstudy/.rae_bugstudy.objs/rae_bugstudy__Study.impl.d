lib/bugstudy/study.ml: Format Hashtbl List String Taxonomy
