(** Aggregation: regenerating Table 1 and Figure 1 from the corpus.

    [table1] runs the classifiers over a record list and counts each
    (determinism × consequence) cell; [fig1] does the per-year series of
    deterministic bugs.  Applied to {!Corpus.records} they reproduce the
    paper's published numbers; applied to any other record list they run
    the same study on it. *)

type cell_counts = { no_crash : int; crash : int; warn : int; unknown : int }

val cell_total : cell_counts -> int

type table1 = {
  deterministic : cell_counts;
  non_deterministic : cell_counts;
  unknown_det : cell_counts;
}

val table1 : Taxonomy.record list -> table1
val grand_total : table1 -> int

val detectable_deterministic : table1 -> int
(** Crash + WARN among deterministic bugs — the paper's "a significant
    portion cause crashes or warnings that are detected as runtime errors
    (89/165)". *)

val fig1 : Taxonomy.record list -> (int * cell_counts) list
(** Year -> consequence breakdown of *deterministic* bugs, ascending
    years. *)

val pp_table1 : Format.formatter -> table1 -> unit
(** Render in the paper's layout (rows: determinism; columns: No Crash,
    Crash, WARN, Unknown, Total). *)

val pp_fig1 : Format.formatter -> (int * cell_counts) list -> unit
(** Render the stacked per-year counts as an ASCII chart plus the series
    values. *)
