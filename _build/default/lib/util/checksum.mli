(** CRC32C (Castagnoli) checksums over byte buffers.

    Every on-disk structure in the filesystem format carries a CRC32C
    checksum, mirroring ext4's metadata_csum feature.  The shadow filesystem
    verifies these checksums on every structural read; the base verifies them
    only at mount time (a deliberate contrast the paper draws between the two
    implementations). *)

val crc32c : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** [crc32c ?init b ~pos ~len] computes the CRC32C of [len] bytes of [b]
    starting at [pos].  [init] seeds the accumulator for incremental use
    (default [0l], meaning a fresh checksum).
    @raise Invalid_argument if [pos]/[len] fall outside [b]. *)

val crc32c_string : string -> int32
(** [crc32c_string s] is the CRC32C of the whole string [s]. *)

val verify : bytes -> pos:int -> len:int -> expect:int32 -> bool
(** [verify b ~pos ~len ~expect] recomputes the checksum and compares it
    against [expect]. *)
