(** Little-endian binary codec helpers over [bytes].

    All on-disk structures (superblock, inodes, directory entries, journal
    records) are serialised with these primitives.  Every accessor is
    bounds-checked: a malformed length coming from a crafted disk image must
    surface as a recoverable decode error, never as an out-of-bounds read. *)

exception Decode_error of string
(** Raised by [get_*] readers when a read would fall outside the buffer or a
    length field is inconsistent.  The shadow filesystem treats this as an
    invariant violation of the input image. *)

val get_u8 : bytes -> int -> int
val get_u16 : bytes -> int -> int
val get_u32 : bytes -> int -> int64
(** [get_u32 b off] reads an unsigned 32-bit value.  Returned as [int64] so
    the full range is representable without sign games. *)

val get_u32_int : bytes -> int -> int
(** [get_u32_int b off] is [get_u32] narrowed to [int]; values are < 2^32 and
    OCaml ints are 63-bit here, so this is lossless. *)

val get_i32 : bytes -> int -> int32
val get_u64 : bytes -> int -> int64
val get_string : bytes -> pos:int -> len:int -> string

val set_u8 : bytes -> int -> int -> unit
val set_u16 : bytes -> int -> int -> unit
val set_u32 : bytes -> int -> int64 -> unit
val set_u32_int : bytes -> int -> int -> unit
val set_i32 : bytes -> int -> int32 -> unit
val set_u64 : bytes -> int -> int64 -> unit
val set_string : bytes -> pos:int -> string -> unit

(** A cursor for sequential encoding/decoding. *)
module Cursor : sig
  type t

  val of_bytes : ?pos:int -> bytes -> t
  val pos : t -> int
  val seek : t -> int -> unit
  val remaining : t -> int
  val read_u8 : t -> int
  val read_u16 : t -> int
  val read_u32 : t -> int64
  val read_u32_int : t -> int
  val read_u64 : t -> int64
  val read_string : t -> len:int -> string
  val write_u8 : t -> int -> unit
  val write_u16 : t -> int -> unit
  val write_u32 : t -> int64 -> unit
  val write_u32_int : t -> int -> unit
  val write_u64 : t -> int64 -> unit
  val write_string : t -> string -> unit
  val pad_to : t -> int -> unit
  (** [pad_to c off] writes zero bytes until the cursor reaches [off]. *)
end
