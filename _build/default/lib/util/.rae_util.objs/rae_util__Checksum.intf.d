lib/util/checksum.mli:
