lib/util/vclock.ml: Format Int64
