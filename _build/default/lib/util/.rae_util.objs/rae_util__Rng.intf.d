lib/util/rng.mli:
