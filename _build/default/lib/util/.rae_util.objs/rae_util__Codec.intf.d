lib/util/codec.mli:
