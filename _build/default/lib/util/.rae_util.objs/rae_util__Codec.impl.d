lib/util/codec.ml: Bytes Char Format Int64 String
