(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic component in the repository — workload generators,
    non-deterministic bug triggers, fault injection — draws from an explicit
    [Rng.t] seeded by the caller, so that every experiment and test is
    reproducible from its seed. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] snapshots the generator state (independent stream from here). *)

val next : t -> int64
(** [next t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] selects a uniform element.
    @raise Invalid_argument on empty array. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** [pick_weighted t choices] selects proportionally to the integer weights.
    @raise Invalid_argument if all weights are zero or the list is empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives an independent generator (and advances [t]). *)
