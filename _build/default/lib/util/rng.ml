(* Splitmix64: tiny, fast, high-quality 64-bit generator; the canonical
   seeding primitive for xoshiro and friends.  Chosen for deterministic
   replay across platforms. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take the top bits via modulo on the non-negative 62-bit projection;
     bias is negligible for the bounds used here (all << 2^62). *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L
let chance t p = float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.pick_weighted: no positive weight";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: exhausted"
    | (w, x) :: rest -> if target < acc + w then x else go (acc + w) rest
  in
  go 0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = create (next t)
