(* CRC32C, table-driven implementation using the Castagnoli polynomial
   0x1EDC6F41 (reflected: 0x82F63B78), as used by ext4 metadata_csum,
   iSCSI and Btrfs. *)

let polynomial_reflected = 0x82F63B78l

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor (Int32.shift_right_logical !c 1) polynomial_reflected
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let crc32c ?(init = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.crc32c: out of bounds";
  let t = Lazy.force table in
  let c = ref (Int32.lognot init) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let crc32c_string s =
  let b = Bytes.unsafe_of_string s in
  crc32c b ~pos:0 ~len:(Bytes.length b)

let verify b ~pos ~len ~expect = Int32.equal (crc32c b ~pos ~len) expect
