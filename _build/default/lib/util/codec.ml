exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let check b off len what =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    fail "%s: offset %d len %d outside buffer of %d bytes" what off len (Bytes.length b)

let get_u8 b off =
  check b off 1 "get_u8";
  Char.code (Bytes.get b off)

let get_u16 b off =
  check b off 2 "get_u16";
  Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let get_u32 b off =
  check b off 4 "get_u32";
  let g i = Int64.of_int (Char.code (Bytes.get b (off + i))) in
  Int64.logor (g 0)
    (Int64.logor
       (Int64.shift_left (g 1) 8)
       (Int64.logor (Int64.shift_left (g 2) 16) (Int64.shift_left (g 3) 24)))

let get_u32_int b off = Int64.to_int (get_u32 b off)

let get_i32 b off =
  check b off 4 "get_i32";
  Bytes.get_int32_le b off

let get_u64 b off =
  check b off 8 "get_u64";
  Bytes.get_int64_le b off

let get_string b ~pos ~len =
  check b pos len "get_string";
  Bytes.sub_string b pos len

let set_u8 b off v =
  check b off 1 "set_u8";
  Bytes.set b off (Char.chr (v land 0xFF))

let set_u16 b off v =
  check b off 2 "set_u16";
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let set_u32 b off v =
  check b off 4 "set_u32";
  for i = 0 to 3 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let set_u32_int b off v = set_u32 b off (Int64.of_int v)

let set_i32 b off v =
  check b off 4 "set_i32";
  Bytes.set_int32_le b off v

let set_u64 b off v =
  check b off 8 "set_u64";
  Bytes.set_int64_le b off v

let set_string b ~pos s =
  check b pos (String.length s) "set_string";
  Bytes.blit_string s 0 b pos (String.length s)

module Cursor = struct
  type t = { buf : bytes; mutable pos : int }

  let of_bytes ?(pos = 0) buf = { buf; pos }
  let pos c = c.pos
  let seek c p = c.pos <- p
  let remaining c = Bytes.length c.buf - c.pos

  let read_u8 c =
    let v = get_u8 c.buf c.pos in
    c.pos <- c.pos + 1;
    v

  let read_u16 c =
    let v = get_u16 c.buf c.pos in
    c.pos <- c.pos + 2;
    v

  let read_u32 c =
    let v = get_u32 c.buf c.pos in
    c.pos <- c.pos + 4;
    v

  let read_u32_int c =
    let v = get_u32_int c.buf c.pos in
    c.pos <- c.pos + 4;
    v

  let read_u64 c =
    let v = get_u64 c.buf c.pos in
    c.pos <- c.pos + 8;
    v

  let read_string c ~len =
    let v = get_string c.buf ~pos:c.pos ~len in
    c.pos <- c.pos + len;
    v

  let write_u8 c v =
    set_u8 c.buf c.pos v;
    c.pos <- c.pos + 1

  let write_u16 c v =
    set_u16 c.buf c.pos v;
    c.pos <- c.pos + 2

  let write_u32 c v =
    set_u32 c.buf c.pos v;
    c.pos <- c.pos + 4

  let write_u32_int c v =
    set_u32_int c.buf c.pos v;
    c.pos <- c.pos + 4

  let write_u64 c v =
    set_u64 c.buf c.pos v;
    c.pos <- c.pos + 8

  let write_string c s =
    set_string c.buf ~pos:c.pos s;
    c.pos <- c.pos + String.length s

  let pad_to c off =
    if off < c.pos then fail "pad_to: target %d before cursor %d" off c.pos;
    Bytes.fill c.buf c.pos (off - c.pos) '\000';
    c.pos <- off
end
