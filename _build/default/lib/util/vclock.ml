type t = { mutable ns : int64 }

let create () = { ns = 0L }
let now t = t.ns

let advance t delta =
  if Int64.compare delta 0L < 0 then invalid_arg "Vclock.advance: negative delta";
  t.ns <- Int64.add t.ns delta

let reset t = t.ns <- 0L

let pp_duration ppf ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Format.fprintf ppf "%.0fns" f
  else if f < 1e6 then Format.fprintf ppf "%.2fus" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.2fms" (f /. 1e6)
  else Format.fprintf ppf "%.3fs" (f /. 1e9)
