(** Virtual clock, in nanoseconds.

    The simulated block device and block layer charge latency against a
    virtual clock rather than wall time, so that benchmarks measuring
    *simulated* device time (e.g. recovery-latency sweeps) are deterministic,
    while bechamel measures the real CPU cost of the algorithms. *)

type t

val create : unit -> t
(** A fresh clock at time 0. *)

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val advance : t -> int64 -> unit
(** [advance t ns] moves the clock forward; negative deltas are rejected.
    @raise Invalid_argument on negative [ns]. *)

val reset : t -> unit

val pp_duration : Format.formatter -> int64 -> unit
(** Pretty-print a nanosecond duration with an adaptive unit. *)
