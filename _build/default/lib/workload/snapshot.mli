(** Implementation-agnostic filesystem snapshots.

    Walks any filesystem through its public operation interface (an [exec]
    function) and produces a normalized view of the *essential state* the
    paper's recovery must preserve (§2.2): the tree with kinds, sizes,
    link counts, modes and full file contents.  Because it only uses the
    public API, the same walker compares the specification, the base, the
    shadow and the RAE controller.

    The walk opens and closes descriptors; run it only at quiescent points
    (it restores the descriptor table it found). *)

type entry = {
  e_path : string;
  e_kind : Rae_vfs.Types.kind;
  e_ino : int;
  e_size : int;
  e_nlink : int;
  e_mode : int;
  e_content : string;  (** file bytes, or symlink target; "" for dirs *)
}

type t = entry list
(** Sorted by path. *)

val capture : exec:('fs -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome) -> 'fs -> (t, string) result
(** Walk from the root.  Fails on unexpected errors (e.g. a directory that
    cannot be listed). *)

val equal : t -> t -> bool
val diff : t -> t -> string list
val pp : Format.formatter -> t -> unit
