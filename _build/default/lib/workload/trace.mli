(** Textual operation traces.

    RAE's oplog (paper §3.2) is the in-memory form of an execution trace;
    this module gives traces a durable, human-readable text form so that
    error-triggering sequences can be saved, shipped in bug reports, and
    replayed deterministically against any {!Rae_vfs.Fs_intf.S}
    implementation — the "sequence and outputs are recorded (input to the
    shadow), making the shadow filesystem a valuable post-error testing
    tool" workflow of §4.3.

    Format: one operation per line, keyword first, strings OCaml-quoted:
    {v
      mkdir "/mail" 755
      open "/mail/f00001" rwc
      pwrite 0 0 "payload..."
      fsync 0
      close 0
      sync
    v}
    Lines starting with ['#'] and blank lines are ignored. *)

val op_to_line : Rae_vfs.Op.t -> string
val op_of_line : string -> (Rae_vfs.Op.t, string) result

val to_string : Rae_vfs.Op.t list -> string
val of_string : string -> (Rae_vfs.Op.t list, string) result
(** Fails with a message naming the first bad line (1-indexed). *)

val save : string -> Rae_vfs.Op.t list -> (unit, string) result
val load : string -> (Rae_vfs.Op.t list, string) result

val replay :
  exec:('fs -> Rae_vfs.Op.t -> Rae_vfs.Op.outcome) ->
  'fs ->
  Rae_vfs.Op.t list ->
  (Rae_vfs.Op.t * Rae_vfs.Op.outcome) list
(** Execute a trace, pairing each op with its outcome. *)
