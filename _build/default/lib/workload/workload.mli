(** Seeded workload generators.

    Two families:

    - {b uniform} — operations drawn over a small closed path universe,
      fds drawn from a small integer range.  Error outcomes (ENOENT,
      EEXIST, EBADF, ...) are part of the workload; this is the generator
      the implementation-equivalence property tests use, because any two
      correct implementations must agree on *every* outcome, errors
      included.
    - {b profiles} — filebench-style application shapes (varmail,
      fileserver, webserver, metadata-heavy), generating operation
      sequences that mostly succeed against an initially-empty filesystem.
      These drive the performance benches (experiments E3-E7) and the
      availability experiment (E8).

    All generators are deterministic functions of the {!Rae_util.Rng.t}
    passed in. *)

type profile =
  | Varmail
  | Fileserver
  | Webserver
  | Metadata
  | Sequential_write
  | Random_read
  | Multiclient  (** many clients, each with a long-lived open descriptor *)

val all_profiles : profile list
val profile_name : profile -> string
val profile_of_name : string -> profile option

val uniform : Rae_util.Rng.t -> count:int -> Rae_vfs.Op.t list
(** Ops over a closed universe of paths (depth <= 3, 4 names per level) and
    fds 0..7; all 20 operation kinds appear. *)

val uniform_mutations : Rae_util.Rng.t -> count:int -> Rae_vfs.Op.t list
(** Like {!uniform} but excluding [Fsync]/[Sync] (for replay against
    implementations where sync is a commit barrier, to keep the recorded
    window open). *)

val ops : profile -> Rae_util.Rng.t -> count:int -> Rae_vfs.Op.t list
(** Generate approximately [count] operations of the given profile,
    including any setup prefix (mkdir of working directories etc.).
    Profiles are stateful generators that track which files they created,
    so the sequences largely succeed. *)

val pp_summary : Format.formatter -> Rae_vfs.Op.t list -> unit
(** Histogram of op kinds, for logging. *)
