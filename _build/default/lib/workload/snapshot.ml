open Rae_vfs

type entry = {
  e_path : string;
  e_kind : Types.kind;
  e_ino : int;
  e_size : int;
  e_nlink : int;
  e_mode : int;
  e_content : string;
}

type t = entry list

let capture ~exec fs =
  let ( let* ) = Result.bind in
  let err where outcome =
    Error (Format.asprintf "%s: unexpected %a" where Op.pp_outcome outcome)
  in
  let rec walk path acc =
    let pstr = Path.to_string path in
    let* names =
      match exec fs (Op.Readdir path) with
      | Ok (Op.Names names) -> Ok names
      | outcome -> err ("readdir " ^ pstr) outcome
    in
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let child = Path.append path name in
        let cstr = Path.to_string child in
        (* Distinguish symlinks first: readlink does not follow. *)
        match exec fs (Op.Readlink child) with
        | Ok (Op.Data target) -> (
            match exec fs (Op.Lookup child) with
            | Ok (Op.Ino _) | Error _ ->
                (* Target stats are captured at the target's own path. *)
                Ok
                  ({
                     e_path = cstr;
                     e_kind = Types.Symlink;
                     e_ino = 0 (* symlink inode numbers tracked via lookup of the link? stat follows; keep 0 *);
                     e_size = String.length target;
                     e_nlink = 1;
                     e_mode = 0o777;
                     e_content = target;
                   }
                  :: acc)
            | outcome -> err ("lookup " ^ cstr) outcome)
        | Error Errno.EINVAL -> (
            (* Not a symlink: stat it. *)
            match exec fs (Op.Stat child) with
            | Ok (Op.St st) -> (
                match st.Types.st_kind with
                | Types.Directory ->
                    walk child
                      ({
                         e_path = cstr;
                         e_kind = Types.Directory;
                         e_ino = st.Types.st_ino;
                         e_size = 0;
                         e_nlink = st.Types.st_nlink;
                         e_mode = st.Types.st_mode;
                         e_content = "";
                       }
                      :: acc)
                | Types.Regular -> (
                    match exec fs (Op.Open (child, Types.flags_ro)) with
                    | Ok (Op.Fd fd) -> (
                        let data =
                          match exec fs (Op.Pread (fd, 0, st.Types.st_size)) with
                          | Ok (Op.Data d) -> Ok d
                          | outcome -> err ("pread " ^ cstr) outcome
                        in
                        ignore (exec fs (Op.Close fd));
                        match data with
                        | Ok d ->
                            Ok
                              ({
                                 e_path = cstr;
                                 e_kind = Types.Regular;
                                 e_ino = st.Types.st_ino;
                                 e_size = st.Types.st_size;
                                 e_nlink = st.Types.st_nlink;
                                 e_mode = st.Types.st_mode;
                                 e_content = d;
                               }
                              :: acc)
                        | Error e -> Error e)
                    | outcome -> err ("open " ^ cstr) outcome)
                | Types.Symlink -> err ("stat " ^ cstr) (Ok (Op.St st)))
            | outcome -> err ("stat " ^ cstr) outcome)
        | outcome -> err ("readlink " ^ cstr) outcome)
      (Ok acc) names
  in
  Result.map (List.sort (fun a b -> compare a.e_path b.e_path)) (walk [] [])

let entry_equal a b =
  a.e_path = b.e_path && a.e_kind = b.e_kind && a.e_ino = b.e_ino && a.e_size = b.e_size
  && a.e_nlink = b.e_nlink && a.e_mode = b.e_mode && String.equal a.e_content b.e_content

let equal a b = List.equal entry_equal a b

let pp_entry ppf e =
  Format.fprintf ppf "%s %s ino=%d size=%d nlink=%d mode=%03o" e.e_path
    (Types.kind_to_string e.e_kind) e.e_ino e.e_size e.e_nlink e.e_mode

let diff a b =
  let index t = List.map (fun e -> (e.e_path, e)) t in
  let ia = index a and ib = index b in
  let out = ref [] in
  let note fmt = Format.kasprintf (fun s -> out := s :: !out) fmt in
  List.iter
    (fun (path, ea) ->
      match List.assoc_opt path ib with
      | None -> note "only in first: %s" path
      | Some eb ->
          if not (entry_equal ea eb) then
            note "differs at %s: %a vs %a" path pp_entry ea pp_entry eb)
    ia;
  List.iter (fun (path, _) -> if not (List.mem_assoc path ia) then note "only in second: %s" path) ib;
  List.rev !out

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_entry e) t;
  Format.fprintf ppf "@]"
