open Rae_vfs
module Rng = Rae_util.Rng

type profile = Varmail | Fileserver | Webserver | Metadata | Sequential_write | Random_read | Multiclient

let all_profiles =
  [ Varmail; Fileserver; Webserver; Metadata; Sequential_write; Random_read; Multiclient ]

let profile_name = function
  | Varmail -> "varmail"
  | Fileserver -> "fileserver"
  | Webserver -> "webserver"
  | Metadata -> "metadata"
  | Sequential_write -> "seqwrite"
  | Random_read -> "randread"
  | Multiclient -> "multiclient"

let profile_of_name s = List.find_opt (fun p -> profile_name p = s) all_profiles

(* ---- uniform generator over a closed universe ---- *)

let names = [| "a"; "b"; "c"; "d" |]

let gen_path rng =
  let depth = Rng.int_in rng 0 3 in
  List.init depth (fun _ -> Rng.pick rng names)

let gen_nonroot_path rng =
  let depth = Rng.int_in rng 1 3 in
  List.init depth (fun _ -> Rng.pick rng names)

let gen_fd rng = Rng.int rng 8
let gen_mode rng = Rng.pick rng [| 0o644; 0o600; 0o755; 0o700; 0o444 |]

let gen_flags rng =
  Rng.pick rng
    [|
      Types.flags_ro;
      Types.flags_rw;
      Types.flags_create;
      Types.flags_excl;
      Types.flags_trunc;
      Types.flags_append;
      { Types.flags_rw with Types.rd = false };
    |]

let gen_data rng =
  let len = Rng.pick rng [| 0; 1; 7; 64; 500; 4096; 5000 |] in
  String.init len (fun i -> Char.chr (97 + ((i + Rng.int rng 26) mod 26)))

let gen_target rng =
  (* Mostly valid absolute targets, sometimes junk. *)
  if Rng.chance rng 0.8 then Path.to_string (gen_nonroot_path rng)
  else Rng.pick rng [| "relative/target"; "x"; "/" |]

let gen_uniform_op ?(allow_sync = true) rng =
  let weighted =
    [
      (8, `Create);
      (6, `Mkdir);
      (6, `Unlink);
      (4, `Rmdir);
      (10, `Open);
      (8, `Close);
      (8, `Pread);
      (10, `Pwrite);
      (5, `Lookup);
      (5, `Stat);
      (3, `Fstat);
      (4, `Readdir);
      (6, `Rename);
      (4, `Truncate);
      (3, `Link);
      (3, `Symlink);
      (2, `Readlink);
      (3, `Chmod);
      ((if allow_sync then 2 else 0), `Fsync);
      ((if allow_sync then 1 else 0), `Sync);
    ]
    |> List.filter (fun (w, _) -> w > 0)
  in
  match Rng.pick_weighted rng weighted with
  | `Create -> Op.Create (gen_nonroot_path rng, gen_mode rng)
  | `Mkdir -> Op.Mkdir (gen_nonroot_path rng, gen_mode rng)
  | `Unlink -> Op.Unlink (gen_nonroot_path rng)
  | `Rmdir -> Op.Rmdir (gen_nonroot_path rng)
  | `Open -> Op.Open (gen_nonroot_path rng, gen_flags rng)
  | `Close -> Op.Close (gen_fd rng)
  | `Pread -> Op.Pread (gen_fd rng, Rng.int rng 6000, Rng.int rng 6000)
  | `Pwrite -> Op.Pwrite (gen_fd rng, Rng.int rng 6000, gen_data rng)
  | `Lookup -> Op.Lookup (gen_path rng)
  | `Stat -> Op.Stat (gen_path rng)
  | `Fstat -> Op.Fstat (gen_fd rng)
  | `Readdir -> Op.Readdir (gen_path rng)
  | `Rename -> Op.Rename (gen_nonroot_path rng, gen_nonroot_path rng)
  | `Truncate -> Op.Truncate (gen_nonroot_path rng, Rng.int rng 10000)
  | `Link -> Op.Link (gen_nonroot_path rng, gen_nonroot_path rng)
  | `Symlink -> Op.Symlink (gen_target rng, gen_nonroot_path rng)
  | `Readlink -> Op.Readlink (gen_nonroot_path rng)
  | `Chmod -> Op.Chmod (gen_nonroot_path rng, gen_mode rng)
  | `Fsync -> Op.Fsync (gen_fd rng)
  | `Sync -> Op.Sync

let uniform rng ~count = List.init count (fun _ -> gen_uniform_op rng)
let uniform_mutations rng ~count = List.init count (fun _ -> gen_uniform_op ~allow_sync:false rng)

(* ---- profile generators ----

   Stateful: each tracks the population of files it has created so the
   emitted sequence mostly succeeds on an initially-empty filesystem. *)

type sim = {
  rng : Rng.t;
  mutable files : Path.t list;  (* existing files, newest first *)
  mutable next_id : int;
  mutable acc : Op.t list;  (* reversed *)
  dirs : Path.t list;
}

let emit sim op = sim.acc <- op :: sim.acc

let fresh_file sim =
  let dir = Rng.pick sim.rng (Array.of_list sim.dirs) in
  let path = Path.append dir (Printf.sprintf "f%05d" sim.next_id) in
  sim.next_id <- sim.next_id + 1;
  path

let pick_file sim = match sim.files with [] -> None | _ -> Some (Rng.pick sim.rng (Array.of_list sim.files))

let remove_file sim path = sim.files <- List.filter (fun p -> not (Path.equal p path)) sim.files

let mk_sim rng dirs =
  let sim = { rng; files = []; next_id = 0; acc = []; dirs } in
  List.iter (fun d -> emit sim (Op.Mkdir (d, 0o755))) dirs;
  sim

let payload rng lo hi =
  let len = Rng.int_in rng lo hi in
  String.make len (Char.chr (97 + Rng.int rng 26))

(* varmail: create/append/fsync/read/delete over a mail-spool population. *)
let varmail rng ~count =
  let dirs = [ Path.parse_exn "/mail" ] in
  let sim = mk_sim rng dirs in
  while List.length sim.acc < count do
    match Rng.pick_weighted sim.rng [ (4, `Deliver); (3, `Read_mail); (2, `Append); (2, `Delete) ] with
    | `Deliver ->
        let f = fresh_file sim in
        emit sim (Op.Open (f, Types.flags_create));
        emit sim (Op.Pwrite (0, 0, payload sim.rng 200 2000));
        emit sim (Op.Fsync 0);
        emit sim (Op.Close 0);
        sim.files <- f :: sim.files
    | `Read_mail -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Open (f, Types.flags_ro));
            emit sim (Op.Pread (0, 0, 4096));
            emit sim (Op.Close 0))
    | `Append -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Open (f, Types.flags_append));
            emit sim (Op.Pwrite (0, 0, payload sim.rng 100 500));
            emit sim (Op.Fsync 0);
            emit sim (Op.Close 0))
    | `Delete -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Unlink f);
            remove_file sim f)
  done;
  List.rev sim.acc

(* fileserver: create/write/read/stat/delete with a larger working set. *)
let fileserver rng ~count =
  let dirs = List.init 4 (fun i -> Path.parse_exn (Printf.sprintf "/srv%d" i)) in
  let sim = mk_sim rng dirs in
  while List.length sim.acc < count do
    match
      Rng.pick_weighted sim.rng
        [ (3, `Create); (4, `Whole_read); (3, `Append); (2, `Stat); (1, `Delete); (1, `List) ]
    with
    | `Create ->
        let f = fresh_file sim in
        emit sim (Op.Open (f, Types.flags_create));
        emit sim (Op.Pwrite (0, 0, payload sim.rng 1000 16000));
        emit sim (Op.Close 0);
        sim.files <- f :: sim.files
    | `Whole_read -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Open (f, Types.flags_ro));
            emit sim (Op.Pread (0, 0, 16384));
            emit sim (Op.Close 0))
    | `Append -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Open (f, Types.flags_append));
            emit sim (Op.Pwrite (0, 0, payload sim.rng 500 4000));
            emit sim (Op.Close 0))
    | `Stat -> ( match pick_file sim with None -> () | Some f -> emit sim (Op.Stat f))
    | `Delete -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Unlink f);
            remove_file sim f)
    | `List ->
        let d = Rng.pick sim.rng (Array.of_list sim.dirs) in
        emit sim (Op.Readdir d)
  done;
  List.rev sim.acc

(* webserver: read-heavy over a pre-created document tree + a log append. *)
let webserver rng ~count =
  let sim = mk_sim rng [ Path.parse_exn "/htdocs" ] in
  (* Pre-populate documents. *)
  for _ = 1 to 50 do
    let f = fresh_file sim in
    emit sim (Op.Open (f, Types.flags_create));
    emit sim (Op.Pwrite (0, 0, payload sim.rng 2000 12000));
    emit sim (Op.Close 0);
    sim.files <- f :: sim.files
  done;
  emit sim (Op.Mkdir (Path.parse_exn "/logs", 0o755));
  emit sim (Op.Create (Path.parse_exn "/logs/access.log", 0o644));
  while List.length sim.acc < count do
    match Rng.pick_weighted sim.rng [ (9, `Get); (1, `Log) ] with
    | `Get -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Open (f, Types.flags_ro));
            emit sim (Op.Pread (0, 0, 16384));
            emit sim (Op.Close 0))
    | `Log ->
        emit sim (Op.Open (Path.parse_exn "/logs/access.log", Types.flags_append));
        emit sim (Op.Pwrite (0, 0, payload sim.rng 80 200));
        emit sim (Op.Close 0)
  done;
  List.rev sim.acc

(* metadata: creates/renames/links/removals, little data. *)
let metadata rng ~count =
  let dirs = List.init 8 (fun i -> Path.parse_exn (Printf.sprintf "/d%d" i)) in
  let sim = mk_sim rng dirs in
  while List.length sim.acc < count do
    match
      Rng.pick_weighted sim.rng
        [ (4, `Create); (3, `Rename); (2, `Link); (2, `Unlink); (2, `Mkdir_rmdir); (2, `Symlink); (1, `Chmod) ]
    with
    | `Create ->
        let f = fresh_file sim in
        emit sim (Op.Create (f, 0o644));
        sim.files <- f :: sim.files
    | `Rename -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            let dst = fresh_file sim in
            emit sim (Op.Rename (f, dst));
            remove_file sim f;
            sim.files <- dst :: sim.files)
    | `Link -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            let dst = fresh_file sim in
            emit sim (Op.Link (f, dst));
            sim.files <- dst :: sim.files)
    | `Unlink -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            emit sim (Op.Unlink f);
            remove_file sim f)
    | `Mkdir_rmdir ->
        let d = Path.parse_exn (Printf.sprintf "/tmp%d" sim.next_id) in
        sim.next_id <- sim.next_id + 1;
        emit sim (Op.Mkdir (d, 0o755));
        emit sim (Op.Rmdir d)
    | `Symlink -> (
        match pick_file sim with
        | None -> ()
        | Some f ->
            let l = fresh_file sim in
            emit sim (Op.Symlink (Path.to_string f, l));
            sim.files <- l :: sim.files)
    | `Chmod -> (
        match pick_file sim with None -> () | Some f -> emit sim (Op.Chmod (f, 0o600)))
  done;
  List.rev sim.acc

(* sequential write: one large file written in block-sized chunks. *)
let sequential_write rng ~count =
  let f = Path.parse_exn "/big.dat" in
  let ops = ref [ Op.Open (f, Types.flags_create) ] in
  let chunk = payload rng 4096 4096 in
  for i = 0 to count - 2 do
    ops := Op.Pwrite (0, i * 4096, chunk) :: !ops
  done;
  List.rev (Op.Close 0 :: !ops)

(* random read: pre-written file, random-offset reads. *)
let random_read rng ~count =
  let f = Path.parse_exn "/data.bin" in
  let setup =
    [ Op.Open (f, Types.flags_create) ]
    @ List.init 64 (fun i -> Op.Pwrite (0, i * 4096, payload rng 4096 4096))
  in
  let reads = List.init (max 0 (count - List.length setup)) (fun _ -> Op.Pread (0, Rng.int rng 64 * 4096, 4096)) in
  setup @ reads @ [ Op.Close 0 ]

(* multiclient: N simulated clients, each holding a long-lived descriptor
   to its own log file, interleaving appends, reads, fstats and the odd
   fsync.  Exercises recovery with many live descriptors at the moment of
   an error (fd-table reconstruction, paper 2.2). *)
let multiclient rng ~count =
  let nclients = 8 in
  let acc = ref [ Op.Mkdir (Path.parse_exn "/mc", 0o755) ] in
  let emit op = acc := op :: !acc in
  let sizes = Array.make nclients 0 in
  (* Client k opens /mc/client<k>; fds are allocated 0..N-1 in order
     because nothing ever closes. *)
  let client_flags = { Types.flags_append with Types.creat = true } in
  for k = 0 to nclients - 1 do
    emit (Op.Open (Path.parse_exn (Printf.sprintf "/mc/client%d" k), client_flags))
  done;
  while List.length !acc < count do
    let k = Rng.int rng nclients in
    match Rng.pick_weighted rng [ (5, `Append); (3, `Read); (2, `Fstat); (1, `Fsync) ] with
    | `Append ->
        let data = payload rng 50 400 in
        emit (Op.Pwrite (k, 0, data)) (* append flag: offset ignored *);
        sizes.(k) <- sizes.(k) + String.length data
    | `Read ->
        let off = if sizes.(k) = 0 then 0 else Rng.int rng sizes.(k) in
        emit (Op.Pread (k, off, 512))
    | `Fstat -> emit (Op.Fstat k)
    | `Fsync -> emit (Op.Fsync k)
  done;
  List.rev !acc

let ops profile rng ~count =
  match profile with
  | Varmail -> varmail rng ~count
  | Fileserver -> fileserver rng ~count
  | Webserver -> webserver rng ~count
  | Metadata -> metadata rng ~count
  | Sequential_write -> sequential_write rng ~count
  | Random_read -> random_read rng ~count
  | Multiclient -> multiclient rng ~count

let pp_summary ppf ops =
  let tbl = Hashtbl.create 20 in
  List.iter
    (fun op ->
      let k = Op.kind op in
      Hashtbl.replace tbl k ((try Hashtbl.find tbl k with Not_found -> 0) + 1))
    ops;
  Format.fprintf ppf "@[<h>%d ops:" (List.length ops);
  List.iter
    (fun k ->
      match Hashtbl.find_opt tbl k with
      | Some n -> Format.fprintf ppf " %s=%d" (Op.kind_to_string k) n
      | None -> ())
    Op.all_kinds;
  Format.fprintf ppf "@]"
