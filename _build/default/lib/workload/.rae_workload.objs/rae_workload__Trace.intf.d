lib/workload/trace.mli: Rae_vfs
