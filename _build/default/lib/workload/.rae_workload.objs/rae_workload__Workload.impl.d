lib/workload/workload.ml: Array Char Format Hashtbl List Op Path Printf Rae_util Rae_vfs String Types
