lib/workload/workload.mli: Format Rae_util Rae_vfs
