lib/workload/trace.ml: Format Fun List Op Path Printf Rae_vfs Result Scanf String Types
