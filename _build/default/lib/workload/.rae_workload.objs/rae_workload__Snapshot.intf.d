lib/workload/snapshot.mli: Format Rae_vfs
