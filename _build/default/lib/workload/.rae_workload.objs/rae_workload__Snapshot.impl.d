lib/workload/snapshot.ml: Errno Format List Op Path Rae_vfs Result String Types
