open Rae_vfs

let flags_to_string (f : Types.open_flags) =
  let tag b c = if b then String.make 1 c else "" in
  let s =
    tag f.rd 'r' ^ tag f.wr 'w' ^ tag f.creat 'c' ^ tag f.excl 'x' ^ tag f.trunc 't'
    ^ tag f.append 'a'
  in
  if s = "" then "-" else s

let flags_of_string s =
  if String.exists (fun c -> not (String.contains "rwcxta-" c)) s then
    Error (Printf.sprintf "bad flags %S" s)
  else
    Ok
      {
        Types.rd = String.contains s 'r';
        wr = String.contains s 'w';
        creat = String.contains s 'c';
        excl = String.contains s 'x';
        trunc = String.contains s 't';
        append = String.contains s 'a';
      }

let quote_path path = Printf.sprintf "%S" (Path.to_string path)

let op_to_line = function
  | Op.Create (path, mode) -> Printf.sprintf "create %s %o" (quote_path path) mode
  | Op.Mkdir (path, mode) -> Printf.sprintf "mkdir %s %o" (quote_path path) mode
  | Op.Unlink path -> Printf.sprintf "unlink %s" (quote_path path)
  | Op.Rmdir path -> Printf.sprintf "rmdir %s" (quote_path path)
  | Op.Open (path, flags) -> Printf.sprintf "open %s %s" (quote_path path) (flags_to_string flags)
  | Op.Close fd -> Printf.sprintf "close %d" fd
  | Op.Pread (fd, off, len) -> Printf.sprintf "pread %d %d %d" fd off len
  | Op.Pwrite (fd, off, data) -> Printf.sprintf "pwrite %d %d %S" fd off data
  | Op.Lookup path -> Printf.sprintf "lookup %s" (quote_path path)
  | Op.Stat path -> Printf.sprintf "stat %s" (quote_path path)
  | Op.Fstat fd -> Printf.sprintf "fstat %d" fd
  | Op.Readdir path -> Printf.sprintf "readdir %s" (quote_path path)
  | Op.Rename (src, dst) -> Printf.sprintf "rename %s %s" (quote_path src) (quote_path dst)
  | Op.Truncate (path, size) -> Printf.sprintf "truncate %s %d" (quote_path path) size
  | Op.Link (src, dst) -> Printf.sprintf "link %s %s" (quote_path src) (quote_path dst)
  | Op.Symlink (target, path) -> Printf.sprintf "symlink %S %s" target (quote_path path)
  | Op.Readlink path -> Printf.sprintf "readlink %s" (quote_path path)
  | Op.Chmod (path, mode) -> Printf.sprintf "chmod %s %o" (quote_path path) mode
  | Op.Fsync fd -> Printf.sprintf "fsync %d" fd
  | Op.Sync -> "sync"

let parse_path s =
  match Path.parse s with
  | Ok p -> Ok p
  | Error e -> Error (Format.asprintf "bad path %S: %a" s Path.pp_error e)

let op_of_line line =
  let ( let* ) = Result.bind in
  let fail () = Error (Printf.sprintf "unparsable line %S" line) in
  let try_scan fmt k = try Some (Scanf.sscanf line fmt k) with
    | Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  let keyword = match String.index_opt line ' ' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match keyword with
  | "create" -> (
      match try_scan "create %S %o" (fun p m -> (p, m)) with
      | Some (p, m) ->
          let* p = parse_path p in
          Ok (Op.Create (p, m))
      | None -> fail ())
  | "mkdir" -> (
      match try_scan "mkdir %S %o" (fun p m -> (p, m)) with
      | Some (p, m) ->
          let* p = parse_path p in
          Ok (Op.Mkdir (p, m))
      | None -> fail ())
  | "unlink" -> (
      match try_scan "unlink %S" Fun.id with
      | Some p ->
          let* p = parse_path p in
          Ok (Op.Unlink p)
      | None -> fail ())
  | "rmdir" -> (
      match try_scan "rmdir %S" Fun.id with
      | Some p ->
          let* p = parse_path p in
          Ok (Op.Rmdir p)
      | None -> fail ())
  | "open" -> (
      match try_scan "open %S %s" (fun p f -> (p, f)) with
      | Some (p, f) ->
          let* p = parse_path p in
          let* f = flags_of_string f in
          Ok (Op.Open (p, f))
      | None -> fail ())
  | "close" -> (
      match try_scan "close %d" Fun.id with Some fd -> Ok (Op.Close fd) | None -> fail ())
  | "pread" -> (
      match try_scan "pread %d %d %d" (fun a b c -> (a, b, c)) with
      | Some (fd, off, len) -> Ok (Op.Pread (fd, off, len))
      | None -> fail ())
  | "pwrite" -> (
      match try_scan "pwrite %d %d %S" (fun a b c -> (a, b, c)) with
      | Some (fd, off, data) -> Ok (Op.Pwrite (fd, off, data))
      | None -> fail ())
  | "lookup" -> (
      match try_scan "lookup %S" Fun.id with
      | Some p ->
          let* p = parse_path p in
          Ok (Op.Lookup p)
      | None -> fail ())
  | "stat" -> (
      match try_scan "stat %S" Fun.id with
      | Some p ->
          let* p = parse_path p in
          Ok (Op.Stat p)
      | None -> fail ())
  | "fstat" -> (
      match try_scan "fstat %d" Fun.id with Some fd -> Ok (Op.Fstat fd) | None -> fail ())
  | "readdir" -> (
      match try_scan "readdir %S" Fun.id with
      | Some p ->
          let* p = parse_path p in
          Ok (Op.Readdir p)
      | None -> fail ())
  | "rename" -> (
      match try_scan "rename %S %S" (fun a b -> (a, b)) with
      | Some (a, b) ->
          let* a = parse_path a in
          let* b = parse_path b in
          Ok (Op.Rename (a, b))
      | None -> fail ())
  | "truncate" -> (
      match try_scan "truncate %S %d" (fun a b -> (a, b)) with
      | Some (p, size) ->
          let* p = parse_path p in
          Ok (Op.Truncate (p, size))
      | None -> fail ())
  | "link" -> (
      match try_scan "link %S %S" (fun a b -> (a, b)) with
      | Some (a, b) ->
          let* a = parse_path a in
          let* b = parse_path b in
          Ok (Op.Link (a, b))
      | None -> fail ())
  | "symlink" -> (
      match try_scan "symlink %S %S" (fun a b -> (a, b)) with
      | Some (target, p) ->
          let* p = parse_path p in
          Ok (Op.Symlink (target, p))
      | None -> fail ())
  | "readlink" -> (
      match try_scan "readlink %S" Fun.id with
      | Some p ->
          let* p = parse_path p in
          Ok (Op.Readlink p)
      | None -> fail ())
  | "chmod" -> (
      match try_scan "chmod %S %o" (fun a b -> (a, b)) with
      | Some (p, m) ->
          let* p = parse_path p in
          Ok (Op.Chmod (p, m))
      | None -> fail ())
  | "fsync" -> (
      match try_scan "fsync %d" Fun.id with Some fd -> Ok (Op.Fsync fd) | None -> fail ())
  | "sync" -> Ok Op.Sync
  | _ -> fail ()

let to_string ops = String.concat "\n" (List.map op_to_line ops) ^ "\n"

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else (
          match op_of_line trimmed with
          | Ok op -> go (lineno + 1) (op :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

let save path ops =
  try
    let oc = open_out path in
    output_string oc (to_string ops);
    close_out oc;
    Ok ()
  with Sys_error msg -> Error msg

let load path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s
  with Sys_error msg -> Error msg

let replay ~exec fs ops = List.map (fun op -> (op, exec fs op)) ops
