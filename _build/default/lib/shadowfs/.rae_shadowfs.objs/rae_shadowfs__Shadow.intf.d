lib/shadowfs/shadow.mli: Rae_block Rae_vfs
