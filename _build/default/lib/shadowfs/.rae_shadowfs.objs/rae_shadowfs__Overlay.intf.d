lib/shadowfs/overlay.mli: Rae_block
