lib/shadowfs/overlay.ml: Bytes Hashtbl List Printf Rae_block
