(** Runtime error detection for the base filesystem.

    This is the paper's error-detection channel (§2.1, Table 1): the events
    that RAE reacts to.  Three severities mirror the bug study's
    consequence taxonomy:

    - {!Base_bug} — a BUG()/oops: the base cannot continue the operation
      (null dereference, use-after-free, assertion failure).  In a kernel
      this would crash the machine; here it unwinds to the RAE controller.
    - {!Hang} — a detected deadlock/livelock (the watchdog fired).
    - warnings — WARN_ON() hits: recorded, optionally treated as a
      recovery trigger by the controller.
    - {!Validation_failed} — the "validate upon sync" check (§3.1, citing
      Recon/WAFL): dirty metadata failed validation at a commit barrier,
      before reaching disk. *)

exception Base_bug of { bug : string; msg : string }
exception Hang of { bug : string; msg : string }
exception Validation_failed of { context : string; msg : string }

type warning = { w_bug : string; w_msg : string }

type t

val create : unit -> t
val warn : t -> bug:string -> string -> unit
val warnings : t -> warning list
(** Warnings since the last {!clear}, oldest first. *)

val warn_count : t -> int
(** Total warnings ever recorded (not reset by {!clear}). *)

val clear : t -> unit

val bug_fail : bug:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Base_bug} with a formatted message. *)

val validation_fail : context:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
