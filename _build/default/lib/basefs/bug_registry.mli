(** Injectable bugs for the base filesystem.

    The paper's Table 1 taxonomises 256 real ext4 bugs by determinism and
    consequence; this registry reproduces that taxonomy as *armable*
    faults so the availability experiment (E8) can trigger each class
    under a live workload and measure whether RAE masks it.

    Consequences map to Table 1's columns:
    - [Panic]                  → "Crash"
    - [Warn]                   → "WARN"
    - [Corrupt_*]              → "No Crash" (silent corruption, caught by
                                  the base's commit-time validation)
    - [Wrong_result]           → "No Crash" (visible only to cross-checks)
    - [Hang]                   → "No Crash" (freeze/deadlock; the watchdog
                                  converts it to a detected error)

    Triggers model how the real bugs fire: a latent bug hit on the Nth
    operation of a kind, an input-dependent bug hit whenever a path
    component appears (the crafted-input class), and a racy bug firing
    probabilistically (the non-deterministic class). *)

type consequence =
  | Panic
  | Warn
  | Corrupt_freecount  (** skews the superblock free-block count in memory *)
  | Corrupt_dirent  (** zeroes a rec_len in a cached directory block *)
  | Corrupt_inode_size  (** sets a cached inode's size beyond the maximum *)
  | Wrong_result  (** stat returns a size off by one — app-visible only *)
  | Hang

type trigger =
  | Nth_op_of_kind of Rae_vfs.Op.op_kind * int
      (** fires exactly on the Nth executed op of this kind *)
  | Path_component of string
      (** fires on every operation whose path mentions this name *)
  | With_probability of Rae_vfs.Op.op_kind * float
      (** non-deterministic: fires with probability p on each op of kind *)

type determinism = Deterministic | Non_deterministic

type spec = {
  id : string;
  determinism : determinism;
  trigger : trigger;
  consequence : consequence;
  modeled_after : string;  (** the real ext4 bug class this emulates *)
}

val catalog : spec list
(** A built-in catalog covering every consequence and trigger shape, with
    ids usable from tests and the demo binary. *)

val find : string -> spec option

type t
(** Armed registry state (trigger counters). *)

val arm : ?rng:Rae_util.Rng.t -> spec list -> t
(** [arm specs] prepares the bugs.  [rng] is required when any spec uses
    [With_probability].  @raise Invalid_argument otherwise. *)

val none : t
(** No bugs armed (a healthy base). *)

val fire : t -> Rae_vfs.Op.t -> (spec * consequence) option
(** Called by the base before executing each operation; advances trigger
    counters and reports the first bug that fires, if any. *)

val fired_count : t -> int
val armed_ids : t -> string list
