open Rae_vfs

type consequence =
  | Panic
  | Warn
  | Corrupt_freecount
  | Corrupt_dirent
  | Corrupt_inode_size
  | Wrong_result
  | Hang

type trigger =
  | Nth_op_of_kind of Op.op_kind * int
  | Path_component of string
  | With_probability of Op.op_kind * float

type determinism = Deterministic | Non_deterministic

type spec = {
  id : string;
  determinism : determinism;
  trigger : trigger;
  consequence : consequence;
  modeled_after : string;
}

let catalog =
  [
    {
      id = "dx-hash-panic";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_lookup, 40);
      consequence = Panic;
      modeled_after = "ext4 htree dx_probe NULL dereference on deep lookup paths";
    };
    {
      id = "extent-status-warn";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_truncate, 5);
      consequence = Warn;
      modeled_after = "ext4_es_cache_extent WARN_ON during truncate";
    };
    {
      id = "mballoc-freecount";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_create, 30);
      consequence = Corrupt_freecount;
      modeled_after = "ext4 mballoc group free-count drift (silent corruption)";
    };
    {
      id = "dirent-reclen-zero";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_mkdir, 8);
      consequence = Corrupt_dirent;
      modeled_after = "ext4_rename corrupting rec_len in the dir block cache";
    };
    {
      id = "isize-extension";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_pwrite, 50);
      consequence = Corrupt_inode_size;
      modeled_after = "ext4_handle_inode_extension i_size < i_disksize (bugzilla 217159)";
    };
    {
      id = "orphan-close-uaf";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_close, 25);
      consequence = Panic;
      modeled_after = "use-after-free in ext4_put_super / orphan list handling (bugzilla 200931)";
    };
    {
      id = "crafted-name-panic";
      determinism = Deterministic;
      trigger = Path_component "pwn";
      consequence = Panic;
      modeled_after = "crafted-image NULL dereference reached through a specific name";
    };
    {
      id = "rename-race-panic";
      determinism = Non_deterministic;
      trigger = With_probability (Op.K_rename, 0.08);
      consequence = Panic;
      modeled_after = "ext4 rename vs. writeback race (timing-dependent oops)";
    };
    {
      id = "stat-size-skew";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_stat, 20);
      consequence = Wrong_result;
      modeled_after = "stale i_size read after racy extension (visible only to applications)";
    };
    {
      id = "fsync-deadlock";
      determinism = Deterministic;
      trigger = Nth_op_of_kind (Op.K_fsync, 15);
      consequence = Hang;
      modeled_after = "jbd2 journal_commit vs. fsync ABBA deadlock";
    };
  ]

let find id = List.find_opt (fun s -> s.id = id) catalog

type armed = { spec : spec; mutable kind_count : int; mutable fired : int }

type t = { bugs : armed list; rng : Rae_util.Rng.t option; mutable total_fired : int }

let arm ?rng specs =
  let needs_rng =
    List.exists (fun s -> match s.trigger with With_probability _ -> true | _ -> false) specs
  in
  if needs_rng && rng = None then
    invalid_arg "Bug_registry.arm: probabilistic triggers require an rng";
  { bugs = List.map (fun spec -> { spec; kind_count = 0; fired = 0 }) specs; rng; total_fired = 0 }

let none = { bugs = []; rng = None; total_fired = 0 }

let op_paths op =
  match op with
  | Op.Create (p, _) | Op.Mkdir (p, _) | Op.Unlink p | Op.Rmdir p | Op.Open (p, _)
  | Op.Lookup p | Op.Stat p | Op.Readdir p | Op.Truncate (p, _) | Op.Readlink p
  | Op.Chmod (p, _) | Op.Symlink (_, p) ->
      [ p ]
  | Op.Rename (a, b) | Op.Link (a, b) -> [ a; b ]
  | Op.Close _ | Op.Pread _ | Op.Pwrite _ | Op.Fstat _ | Op.Fsync _ | Op.Sync -> []

let trigger_fires t armed op =
  let kind = Op.kind op in
  match armed.spec.trigger with
  | Nth_op_of_kind (k, n) ->
      if kind = k then begin
        armed.kind_count <- armed.kind_count + 1;
        armed.kind_count = n
      end
      else false
  | Path_component name ->
      List.exists (fun p -> List.exists (String.equal name) p) (op_paths op)
  | With_probability (k, p) -> (
      kind = k
      && match t.rng with Some rng -> Rae_util.Rng.chance rng p | None -> false)

let fire t op =
  let rec go = function
    | [] -> None
    | armed :: rest ->
        if trigger_fires t armed op then begin
          armed.fired <- armed.fired + 1;
          t.total_fired <- t.total_fired + 1;
          Some (armed.spec, armed.spec.consequence)
        end
        else go rest
  in
  go t.bugs

let fired_count t = t.total_fired
let armed_ids t = List.map (fun a -> a.spec.id) t.bugs
