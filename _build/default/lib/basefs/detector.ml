exception Base_bug of { bug : string; msg : string }
exception Hang of { bug : string; msg : string }
exception Validation_failed of { context : string; msg : string }

type warning = { w_bug : string; w_msg : string }

type t = { mutable pending : warning list; mutable total : int }

let create () = { pending = []; total = 0 }

let warn t ~bug msg =
  t.pending <- { w_bug = bug; w_msg = msg } :: t.pending;
  t.total <- t.total + 1

let warnings t = List.rev t.pending
let warn_count t = t.total
let clear t = t.pending <- []

let bug_fail ~bug fmt = Format.kasprintf (fun msg -> raise (Base_bug { bug; msg })) fmt

let validation_fail ~context fmt =
  Format.kasprintf (fun msg -> raise (Validation_failed { context; msg })) fmt
