lib/basefs/detector.ml: Format List
