lib/basefs/base.mli: Bug_registry Detector Rae_block Rae_cache Rae_journal Rae_vfs
