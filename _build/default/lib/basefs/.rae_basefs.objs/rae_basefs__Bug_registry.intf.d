lib/basefs/bug_registry.mli: Rae_util Rae_vfs
