lib/basefs/detector.mli: Format
