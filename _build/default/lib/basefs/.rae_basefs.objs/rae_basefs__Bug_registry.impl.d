lib/basefs/bug_registry.ml: List Op Rae_util Rae_vfs String
