lib/journal/journal.mli: Format Rae_block Rae_format
