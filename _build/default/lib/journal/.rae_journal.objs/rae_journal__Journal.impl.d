lib/journal/journal.ml: Bytes Checksum Codec Format Int32 Int64 List Printf Rae_block Rae_format Rae_util
