type ino = int
type fd = int

let root_ino = 1
let invalid_ino = 0

type kind = Regular | Directory | Symlink

let kind_to_string = function
  | Regular -> "regular"
  | Directory -> "directory"
  | Symlink -> "symlink"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let kind_code = function Regular -> 1 | Directory -> 2 | Symlink -> 3

let kind_of_code = function
  | 1 -> Some Regular
  | 2 -> Some Directory
  | 3 -> Some Symlink
  | _ -> None

type stat = {
  st_ino : ino;
  st_kind : kind;
  st_size : int;
  st_nlink : int;
  st_mode : int;
  st_mtime : int64;
  st_ctime : int64;
}

let pp_stat ppf s =
  Format.fprintf ppf "{ino=%d; kind=%a; size=%d; nlink=%d; mode=%03o; mtime=%Ld; ctime=%Ld}"
    s.st_ino pp_kind s.st_kind s.st_size s.st_nlink s.st_mode s.st_mtime s.st_ctime

let stat_equal ?(ignore_times = false) a b =
  a.st_ino = b.st_ino && a.st_kind = b.st_kind && a.st_size = b.st_size
  && a.st_nlink = b.st_nlink && a.st_mode = b.st_mode
  && (ignore_times || (Int64.equal a.st_mtime b.st_mtime && Int64.equal a.st_ctime b.st_ctime))

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

let flags_ro = { rd = true; wr = false; creat = false; excl = false; trunc = false; append = false }
let flags_rw = { flags_ro with wr = true }
let flags_create = { flags_rw with creat = true }
let flags_excl = { flags_create with excl = true }
let flags_trunc = { flags_rw with trunc = true }
let flags_append = { flags_rw with append = true }

let pp_flags ppf f =
  let tag b s = if b then s else "" in
  Format.fprintf ppf "%s%s%s%s%s%s"
    (tag f.rd "r") (tag f.wr "w") (tag f.creat "c") (tag f.excl "x") (tag f.trunc "t")
    (tag f.append "a")

let max_name_len = 255
let max_symlink_depth = 8
