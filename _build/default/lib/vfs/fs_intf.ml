(** The common filesystem interface.

    Every implementation in this repository — the pure specification model
    ({!Rae_specfs.Spec}), the performance-oriented base ({!Rae_basefs.Base})
    and the shadow ({!Rae_shadowfs.Shadow}) — satisfies {!S}.  The paper's
    requirement that base and shadow "adhere to the same API" is this module
    type; {!Dispatch} derives a uniform [Op.t] interpreter from it, which is
    how traces are replayed against any implementation. *)

open Types

module type S = sig
  type t

  val create : t -> Path.t -> mode:int -> ino Errno.result
  (** Create an empty regular file.  Fails [EEXIST] if the name exists,
      [ENOENT]/[ENOTDIR] on bad parents. *)

  val mkdir : t -> Path.t -> mode:int -> ino Errno.result
  val unlink : t -> Path.t -> unit Errno.result
  (** Remove a file or symlink ([EISDIR] on directories). *)

  val rmdir : t -> Path.t -> unit Errno.result
  (** Remove an empty directory ([ENOTEMPTY] otherwise). *)

  val openf : t -> Path.t -> open_flags -> fd Errno.result
  val close : t -> fd -> unit Errno.result
  val pread : t -> fd -> off:int -> len:int -> string Errno.result
  (** Short reads at EOF; [""] beyond EOF. *)

  val pwrite : t -> fd -> off:int -> string -> int Errno.result
  (** Returns bytes written; extends and zero-fills holes as needed.  With
      [append] flag the offset argument is ignored and EOF is used. *)

  val lookup : t -> Path.t -> ino Errno.result
  val stat : t -> Path.t -> stat Errno.result
  val fstat : t -> fd -> stat Errno.result
  val readdir : t -> Path.t -> string list Errno.result
  (** Entry names excluding "." and "..", sorted. *)

  val rename : t -> Path.t -> Path.t -> unit Errno.result
  val truncate : t -> Path.t -> size:int -> unit Errno.result
  val link : t -> Path.t -> Path.t -> unit Errno.result
  val symlink : t -> target:string -> Path.t -> ino Errno.result
  val readlink : t -> Path.t -> string Errno.result
  val chmod : t -> Path.t -> mode:int -> unit Errno.result
  val fsync : t -> fd -> unit Errno.result
  val sync : t -> unit Errno.result
end

(** Derive an [Op.t] interpreter from any {!S}. *)
module Dispatch (F : S) = struct
  let exec (fs : F.t) (op : Op.t) : Op.outcome =
    let map f r = Result.map f r in
    match op with
    | Op.Create (path, mode) -> map (fun i -> Op.Ino i) (F.create fs path ~mode)
    | Op.Mkdir (path, mode) -> map (fun i -> Op.Ino i) (F.mkdir fs path ~mode)
    | Op.Unlink path -> map (fun () -> Op.Unit) (F.unlink fs path)
    | Op.Rmdir path -> map (fun () -> Op.Unit) (F.rmdir fs path)
    | Op.Open (path, flags) -> map (fun fd -> Op.Fd fd) (F.openf fs path flags)
    | Op.Close fd -> map (fun () -> Op.Unit) (F.close fs fd)
    | Op.Pread (fd, off, len) -> map (fun s -> Op.Data s) (F.pread fs fd ~off ~len)
    | Op.Pwrite (fd, off, data) -> map (fun n -> Op.Len n) (F.pwrite fs fd ~off data)
    | Op.Lookup path -> map (fun i -> Op.Ino i) (F.lookup fs path)
    | Op.Stat path -> map (fun st -> Op.St st) (F.stat fs path)
    | Op.Fstat fd -> map (fun st -> Op.St st) (F.fstat fs fd)
    | Op.Readdir path -> map (fun names -> Op.Names names) (F.readdir fs path)
    | Op.Rename (src, dst) -> map (fun () -> Op.Unit) (F.rename fs src dst)
    | Op.Truncate (path, size) -> map (fun () -> Op.Unit) (F.truncate fs path ~size)
    | Op.Link (src, dst) -> map (fun () -> Op.Unit) (F.link fs src dst)
    | Op.Symlink (target, link) -> map (fun i -> Op.Ino i) (F.symlink fs ~target link)
    | Op.Readlink path -> map (fun s -> Op.Data s) (F.readlink fs path)
    | Op.Chmod (path, mode) -> map (fun () -> Op.Unit) (F.chmod fs path ~mode)
    | Op.Fsync fd -> map (fun () -> Op.Unit) (F.fsync fs fd)
    | Op.Sync -> map (fun () -> Op.Unit) (F.sync fs)
end
