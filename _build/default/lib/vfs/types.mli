(** Core value types shared by every filesystem implementation.

    The base filesystem, the shadow filesystem and the pure specification
    model all speak this vocabulary, which is what makes cross-checking their
    outputs (paper §3.3, "core functionality") a typed comparison rather than
    an ad-hoc diff. *)

type ino = int
(** Inode number.  [root_ino] is always 1, as in ext4 (inode 0 is invalid). *)

type fd = int
(** File descriptor, allocated lowest-free like POSIX. *)

val root_ino : ino
val invalid_ino : ino

type kind = Regular | Directory | Symlink

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val kind_code : kind -> int
(** On-disk encoding of the kind (1-origin; 0 is reserved as invalid). *)

val kind_of_code : int -> kind option

type stat = {
  st_ino : ino;
  st_kind : kind;
  st_size : int;  (** bytes for files, entry payload bytes for directories *)
  st_nlink : int;
  st_mode : int;  (** permission bits, 0o000–0o777 *)
  st_mtime : int64;  (** logical timestamp (operation counter, see below) *)
  st_ctime : int64;
}
(** File attributes.  Timestamps are *logical*: every executed operation
    advances a per-filesystem counter, so two correct implementations
    executing the same trace produce identical timestamps — which lets the
    cross-checker compare stats exactly. *)

val pp_stat : Format.formatter -> stat -> unit

val stat_equal : ?ignore_times:bool -> stat -> stat -> bool
(** Structural equality; [ignore_times] drops the timestamp fields, used when
    comparing implementations that may tick differently (default false). *)

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

val flags_ro : open_flags
val flags_rw : open_flags
val flags_create : open_flags
(** Read-write, create-if-absent. *)

val flags_excl : open_flags
(** Create, fail if the file already exists. *)

val flags_trunc : open_flags
val flags_append : open_flags
val pp_flags : Format.formatter -> open_flags -> unit

val max_name_len : int
(** Maximum length of a single path component (255, as ext4). *)

val max_symlink_depth : int
(** Symlink-following budget before [ELOOP]. *)
