type t =
  | Create of Path.t * int
  | Mkdir of Path.t * int
  | Unlink of Path.t
  | Rmdir of Path.t
  | Open of Path.t * Types.open_flags
  | Close of Types.fd
  | Pread of Types.fd * int * int
  | Pwrite of Types.fd * int * string
  | Lookup of Path.t
  | Stat of Path.t
  | Fstat of Types.fd
  | Readdir of Path.t
  | Rename of Path.t * Path.t
  | Truncate of Path.t * int
  | Link of Path.t * Path.t
  | Symlink of string * Path.t
  | Readlink of Path.t
  | Chmod of Path.t * int
  | Fsync of Types.fd
  | Sync

type value =
  | Unit
  | Fd of Types.fd
  | Ino of Types.ino
  | Data of string
  | Len of int
  | St of Types.stat
  | Names of string list

type outcome = value Errno.result
type recorded = { op : t; outcome : outcome; seq : int }

type op_kind =
  | K_create | K_mkdir | K_unlink | K_rmdir | K_open | K_close | K_pread
  | K_pwrite | K_lookup | K_stat | K_fstat | K_readdir | K_rename
  | K_truncate | K_link | K_symlink | K_readlink | K_chmod | K_fsync | K_sync

let kind = function
  | Create _ -> K_create
  | Mkdir _ -> K_mkdir
  | Unlink _ -> K_unlink
  | Rmdir _ -> K_rmdir
  | Open _ -> K_open
  | Close _ -> K_close
  | Pread _ -> K_pread
  | Pwrite _ -> K_pwrite
  | Lookup _ -> K_lookup
  | Stat _ -> K_stat
  | Fstat _ -> K_fstat
  | Readdir _ -> K_readdir
  | Rename _ -> K_rename
  | Truncate _ -> K_truncate
  | Link _ -> K_link
  | Symlink _ -> K_symlink
  | Readlink _ -> K_readlink
  | Chmod _ -> K_chmod
  | Fsync _ -> K_fsync
  | Sync -> K_sync

let kind_to_string = function
  | K_create -> "create"
  | K_mkdir -> "mkdir"
  | K_unlink -> "unlink"
  | K_rmdir -> "rmdir"
  | K_open -> "open"
  | K_close -> "close"
  | K_pread -> "pread"
  | K_pwrite -> "pwrite"
  | K_lookup -> "lookup"
  | K_stat -> "stat"
  | K_fstat -> "fstat"
  | K_readdir -> "readdir"
  | K_rename -> "rename"
  | K_truncate -> "truncate"
  | K_link -> "link"
  | K_symlink -> "symlink"
  | K_readlink -> "readlink"
  | K_chmod -> "chmod"
  | K_fsync -> "fsync"
  | K_sync -> "sync"

let all_kinds =
  [
    K_create; K_mkdir; K_unlink; K_rmdir; K_open; K_close; K_pread; K_pwrite;
    K_lookup; K_stat; K_fstat; K_readdir; K_rename; K_truncate; K_link;
    K_symlink; K_readlink; K_chmod; K_fsync; K_sync;
  ]

let is_mutation = function
  | Create _ | Mkdir _ | Unlink _ | Rmdir _ | Pwrite _ | Rename _ | Truncate _
  | Link _ | Symlink _ | Chmod _ ->
      true
  | Open (_, flags) -> flags.Types.creat || flags.Types.trunc
  | Close _ | Pread _ | Lookup _ | Stat _ | Fstat _ | Readdir _ | Readlink _
  | Fsync _ | Sync ->
      false

let is_sync = function Fsync _ | Sync -> true | _ -> false

let pp ppf op =
  let p = Path.pp in
  match op with
  | Create (path, mode) -> Format.fprintf ppf "create(%a, %03o)" p path mode
  | Mkdir (path, mode) -> Format.fprintf ppf "mkdir(%a, %03o)" p path mode
  | Unlink path -> Format.fprintf ppf "unlink(%a)" p path
  | Rmdir path -> Format.fprintf ppf "rmdir(%a)" p path
  | Open (path, flags) -> Format.fprintf ppf "open(%a, %a)" p path Types.pp_flags flags
  | Close fd -> Format.fprintf ppf "close(%d)" fd
  | Pread (fd, off, len) -> Format.fprintf ppf "pread(%d, %d, %d)" fd off len
  | Pwrite (fd, off, data) -> Format.fprintf ppf "pwrite(%d, %d, <%d bytes>)" fd off (String.length data)
  | Lookup path -> Format.fprintf ppf "lookup(%a)" p path
  | Stat path -> Format.fprintf ppf "stat(%a)" p path
  | Fstat fd -> Format.fprintf ppf "fstat(%d)" fd
  | Readdir path -> Format.fprintf ppf "readdir(%a)" p path
  | Rename (src, dst) -> Format.fprintf ppf "rename(%a, %a)" p src p dst
  | Truncate (path, size) -> Format.fprintf ppf "truncate(%a, %d)" p path size
  | Link (src, dst) -> Format.fprintf ppf "link(%a, %a)" p src p dst
  | Symlink (target, link) -> Format.fprintf ppf "symlink(%S, %a)" target p link
  | Readlink path -> Format.fprintf ppf "readlink(%a)" p path
  | Chmod (path, mode) -> Format.fprintf ppf "chmod(%a, %03o)" p path mode
  | Fsync fd -> Format.fprintf ppf "fsync(%d)" fd
  | Sync -> Format.pp_print_string ppf "sync"

let pp_value ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Fd fd -> Format.fprintf ppf "fd:%d" fd
  | Ino ino -> Format.fprintf ppf "ino:%d" ino
  | Data s ->
      if String.length s <= 16 then Format.fprintf ppf "data:%S" s
      else Format.fprintf ppf "data:<%d bytes>" (String.length s)
  | Len n -> Format.fprintf ppf "len:%d" n
  | St st -> Types.pp_stat ppf st
  | Names names -> Format.fprintf ppf "[%s]" (String.concat "; " names)

let pp_outcome ppf = function
  | Ok v -> Format.fprintf ppf "Ok %a" pp_value v
  | Error e -> Format.fprintf ppf "Error %a" Errno.pp e

let pp_recorded ppf r =
  Format.fprintf ppf "#%d %a -> %a" r.seq pp r.op pp_outcome r.outcome

let value_equal ?(ignore_times = false) a b =
  match (a, b) with
  | Unit, Unit -> true
  | Fd x, Fd y -> x = y
  | Ino x, Ino y -> x = y
  | Data x, Data y -> String.equal x y
  | Len x, Len y -> x = y
  | St x, St y -> Types.stat_equal ~ignore_times x y
  | Names x, Names y -> List.equal String.equal x y
  | (Unit | Fd _ | Ino _ | Data _ | Len _ | St _ | Names _), _ -> false

let outcome_equal ?(ignore_times = false) a b =
  match (a, b) with
  | Ok x, Ok y -> value_equal ~ignore_times x y
  | Error x, Error y -> Errno.equal x y
  | Ok _, Error _ | Error _, Ok _ -> false

let to_string op = Format.asprintf "%a" pp op
