lib/vfs/types.ml: Format Int64
