lib/vfs/op.mli: Errno Format Path Types
