lib/vfs/op.ml: Errno Format List Path String Types
