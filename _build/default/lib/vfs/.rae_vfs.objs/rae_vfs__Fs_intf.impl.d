lib/vfs/fs_intf.ml: Errno Op Path Result Types
