lib/vfs/path.ml: Format List Stdlib String Types
