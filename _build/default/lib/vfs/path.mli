(** Absolute path handling.

    Paths are absolute, '/'-separated, with "." and ".." resolved lexically
    at parse time (".." never escapes the root, as in POSIX).  Component
    validation is strict — crafted names containing NUL or '/' or exceeding
    {!Types.max_name_len} are rejected with a typed error, because malformed
    names arriving from a crafted disk image are one of the bug classes the
    paper's study highlights. *)

type t = string list
(** A parsed path: the list of components from the root.  [[]] is "/". *)

type error = Not_absolute | Empty_component | Bad_component of string | Too_long of string

val pp_error : Format.formatter -> error -> unit

val component_ok : string -> bool
(** [component_ok name] checks a single name: non-empty, no '/', no NUL, not
    "." or "..", length within {!Types.max_name_len}. *)

val parse : string -> (t, error) result
(** [parse s] parses an absolute path, resolving "." and ".." lexically. *)

val parse_exn : string -> t
(** @raise Invalid_argument on malformed input; for literals in tests. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val split_last : t -> (t * string) option
(** [split_last p] is [Some (parent, name)], or [None] for the root. *)

val append : t -> string -> t
val is_prefix : t -> of_:t -> bool
(** [is_prefix p ~of_:q] — is [p] an ancestor of (or equal to) [q]?  Used to
    reject [rename "/a" "/a/b"]-style cycles. *)

val depth : t -> int
