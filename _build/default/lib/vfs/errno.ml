type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | ENOSPC
  | EFBIG
  | ENAMETOOLONG
  | EMFILE
  | EROFS
  | EIO
  | EACCES
  | ELOOP
  | EXDEV

let equal = ( = )
let compare = Stdlib.compare

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | ENOSPC -> "ENOSPC"
  | EFBIG -> "EFBIG"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | EMFILE -> "EMFILE"
  | EROFS -> "EROFS"
  | EIO -> "EIO"
  | EACCES -> "EACCES"
  | ELOOP -> "ELOOP"
  | EXDEV -> "EXDEV"

let pp ppf e = Format.pp_print_string ppf (to_string e)

let all =
  [
    ENOENT;
    EEXIST;
    ENOTDIR;
    EISDIR;
    ENOTEMPTY;
    EBADF;
    EINVAL;
    ENOSPC;
    EFBIG;
    ENAMETOOLONG;
    EMFILE;
    EROFS;
    EIO;
    EACCES;
    ELOOP;
    EXDEV;
  ]

type 'a result = ('a, t) Stdlib.result
