(** The filesystem operation AST.

    RAE's recovery protocol is defined over "the operation sequence that
    tracks the gap between the applications' view and the on-disk state"
    (paper §3.2).  This module is that vocabulary: operations, their results,
    and recorded outcomes.  The recorder ({!Rae_core.Oplog}), the workload
    generators, the trace replayer and the cross-checker all work on these
    values. *)

type t =
  | Create of Path.t * int  (** create an empty regular file with mode *)
  | Mkdir of Path.t * int
  | Unlink of Path.t
  | Rmdir of Path.t
  | Open of Path.t * Types.open_flags
  | Close of Types.fd
  | Pread of Types.fd * int * int  (** fd, offset, length *)
  | Pwrite of Types.fd * int * string  (** fd, offset, data *)
  | Lookup of Path.t
  | Stat of Path.t
  | Fstat of Types.fd
  | Readdir of Path.t
  | Rename of Path.t * Path.t
  | Truncate of Path.t * int
  | Link of Path.t * Path.t  (** hard link: existing, new *)
  | Symlink of string * Path.t  (** target string, link path *)
  | Readlink of Path.t
  | Chmod of Path.t * int
  | Fsync of Types.fd
  | Sync

type value =
  | Unit
  | Fd of Types.fd
  | Ino of Types.ino
  | Data of string
  | Len of int
  | St of Types.stat
  | Names of string list  (** sorted directory listing *)

type outcome = value Errno.result
(** What an execution of an operation produced. *)

type recorded = { op : t; outcome : outcome; seq : int }
(** One oplog entry: the operation, its result as seen by the application,
    and its sequence number in the recorded window. *)

type op_kind =
  | K_create | K_mkdir | K_unlink | K_rmdir | K_open | K_close | K_pread
  | K_pwrite | K_lookup | K_stat | K_fstat | K_readdir | K_rename
  | K_truncate | K_link | K_symlink | K_readlink | K_chmod | K_fsync | K_sync

val kind : t -> op_kind
val kind_to_string : op_kind -> string
val all_kinds : op_kind list

val is_mutation : t -> bool
(** Does the operation (when successful) change filesystem state?  Reads,
    lookups and stats are not recorded by the oplog. *)

val is_sync : t -> bool
(** [Fsync]/[Sync] — the operations a shadow never executes (paper §3.3:
    the shadow omits the sync family and never writes to disk). *)

val pp : Format.formatter -> t -> unit
val pp_value : Format.formatter -> value -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val pp_recorded : Format.formatter -> recorded -> unit

val value_equal : ?ignore_times:bool -> value -> value -> bool
(** Structural equality of results, optionally ignoring stat timestamps. *)

val outcome_equal : ?ignore_times:bool -> outcome -> outcome -> bool

val to_string : t -> string
