(* Tests for rae_shadowfs: overlay behaviour, runtime checks, and the key
   property — the shadow is observationally equivalent to the executable
   specification on arbitrary operation sequences. *)

open Rae_vfs
module Spec = Rae_specfs.Spec
module Shadow = Rae_shadowfs.Shadow
module Overlay = Rae_shadowfs.Overlay
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Layout = Rae_format.Layout

let p = Path.parse_exn
let bs = Layout.block_size
let ok = Result.get_ok

let mk_image ?(nblocks = 2048) ?(ninodes = 256) () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let dev = Device.of_disk disk in
  ignore (ok (Rae_format.Mkfs.format dev ~ninodes ()));
  (disk, dev)

let mk_shadow ?config () =
  let disk, dev = mk_image () in
  (disk, ok (Shadow.attach ?config dev))

(* ---- overlay ---- *)

let test_overlay_cow () =
  let disk, dev = mk_image () in
  let ov = Overlay.create dev in
  let before = Disk.writes disk in
  Overlay.write ov 100 (Bytes.make bs 'x');
  Alcotest.(check int) "device untouched" before (Disk.writes disk);
  Alcotest.(check bool) "read sees overlay" true (Bytes.equal (Overlay.read ov 100) (Bytes.make bs 'x'));
  Alcotest.(check int) "one dirty block" 1 (Overlay.dirty_count ov);
  Alcotest.(check bool) "mem" true (Overlay.mem ov 100);
  Alcotest.(check bool) "other blocks from device" false (Overlay.mem ov 0)

let test_overlay_sorted_dirty () =
  let _disk, dev = mk_image () in
  let ov = Overlay.create dev in
  List.iter (fun b -> Overlay.write ov b (Bytes.make bs 'x')) [ 300; 100; 200 ];
  Alcotest.(check (list int)) "sorted" [ 100; 200; 300 ] (List.map fst (Overlay.dirty ov))

(* ---- shadow never writes ---- *)

let test_shadow_never_writes_device () =
  let disk, sh = mk_shadow () in
  Disk.reset_counters disk;
  ignore (ok (Shadow.mkdir sh (p "/d") ~mode:0o755));
  ignore (ok (Shadow.create sh (p "/d/f") ~mode:0o644));
  let fd = ok (Shadow.openf sh (p "/d/f") Types.flags_rw) in
  ignore (ok (Shadow.pwrite sh fd ~off:0 (String.make 10000 'z')));
  ignore (ok (Shadow.close sh fd));
  ignore (ok (Shadow.rename sh (p "/d/f") (p "/d/g")));
  ignore (ok (Shadow.unlink sh (p "/d/g")));
  Alcotest.(check int) "zero device writes" 0 (Disk.writes disk);
  Alcotest.(check bool) "overlay accumulated the state" true (List.length (Shadow.dirty_blocks sh) > 0)

let test_shadow_smoke () =
  let _disk, sh = mk_shadow () in
  ignore (ok (Shadow.mkdir sh (p "/home") ~mode:0o755));
  let fd = ok (Shadow.openf sh (p "/home/doc.txt") Types.flags_create) in
  Alcotest.(check int) "write" 11 (ok (Shadow.pwrite sh fd ~off:0 "hello world"));
  Alcotest.(check string) "read back" "hello world" (ok (Shadow.pread sh fd ~off:0 ~len:100));
  ignore (ok (Shadow.close sh fd));
  Alcotest.(check (list string)) "listing" [ "doc.txt" ] (ok (Shadow.readdir sh (p "/home")));
  let st = ok (Shadow.stat sh (p "/home/doc.txt")) in
  Alcotest.(check int) "size" 11 st.Types.st_size

let test_shadow_large_file_indirect () =
  (* Cross the direct-pointer boundary (12 * 4096 = 49152 bytes). *)
  let _disk, sh = mk_shadow () in
  let fd = ok (Shadow.openf sh (p "/big") Types.flags_create) in
  let chunk = String.make bs 'A' in
  for i = 0 to 19 do
    Alcotest.(check int) "chunk written" bs (ok (Shadow.pwrite sh fd ~off:(i * bs) chunk))
  done;
  Alcotest.(check int) "size" (20 * bs) (ok (Shadow.fstat sh fd)).Types.st_size;
  Alcotest.(check string) "read across boundary" (String.make 100 'A')
    (ok (Shadow.pread sh fd ~off:((12 * bs) - 50) ~len:100));
  (* Truncate back under the boundary: indirect blocks freed. *)
  ignore (ok (Shadow.close sh fd));
  ignore (ok (Shadow.truncate sh (p "/big") ~size:100));
  Alcotest.(check int) "shrunk" 100 (ok (Shadow.stat sh (p "/big"))).Types.st_size

let test_shadow_enospc () =
  (* A tiny image runs out of blocks; ENOSPC must surface, not corruption. *)
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:80 () in
  let dev = Device.of_disk disk in
  ignore (ok (Rae_format.Mkfs.format dev ~ninodes:16 ~journal_len:4 ()));
  let sh = ok (Shadow.attach dev) in
  let fd = ok (Shadow.openf sh (p "/f") Types.flags_create) in
  let big = String.make (100 * bs) 'x' in
  (match Shadow.pwrite sh fd ~off:0 big with
  | Error Errno.ENOSPC -> ()
  | Error e -> Alcotest.failf "expected ENOSPC, got %s" (Errno.to_string e)
  | Ok n -> Alcotest.failf "wrote %d bytes on a full disk" n);
  (* The filesystem must still work after the failure. *)
  ignore (ok (Shadow.close sh fd));
  ignore (ok (Shadow.create sh (p "/small") ~mode:0o644))

(* ---- runtime checks ---- *)

let test_checks_counted () =
  let _disk, sh = mk_shadow () in
  ignore (ok (Shadow.create sh (p "/f") ~mode:0o644));
  Alcotest.(check bool) "checks performed" true (Shadow.checks_performed sh > 0);
  let _disk2, sh2 = mk_shadow ~config:{ Shadow.default_config with Shadow.checks = false } () in
  ignore (ok (Shadow.create sh2 (p "/f") ~mode:0o644));
  Alcotest.(check int) "no checks when disabled" 0 (Shadow.checks_performed sh2)

let test_violation_on_corrupt_inode () =
  let disk, dev = mk_image () in
  ignore dev;
  (* Corrupt the root inode on the medium, then attach and operate. *)
  let g = (Result.get_ok (Rae_format.Reader.attach (fun b -> Disk.read disk b))).Rae_format.Reader.sb
          .Rae_format.Superblock.geometry in
  Disk.corrupt_byte disk ~block:g.Layout.inode_table_start ~offset:10 (fun _ -> '\xee');
  let sh = ok (Shadow.attach (Device.of_disk disk)) in
  match Shadow.create sh (p "/f") ~mode:0o644 with
  | exception Shadow.Violation _ -> ()
  | Ok _ -> Alcotest.fail "operated on a corrupt image"
  | Error e -> Alcotest.failf "expected Violation, got errno %s" (Errno.to_string e)

let test_violation_on_crafted_dirent () =
  let disk, dev = mk_image () in
  ignore dev;
  let g = (Result.get_ok (Rae_format.Reader.attach (fun b -> Disk.read disk b))).Rae_format.Reader.sb
          .Rae_format.Superblock.geometry in
  (* rec_len = 0 in the root directory block. *)
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:4 (fun _ -> '\000');
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:5 (fun _ -> '\000');
  let sh = ok (Shadow.attach (Device.of_disk disk)) in
  match Shadow.lookup sh (p "/x") with
  | exception Shadow.Violation _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "crafted dirent not caught"

let test_fsck_on_attach_rejects () =
  let disk, dev = mk_image () in
  ignore dev;
  let g = (Result.get_ok (Rae_format.Reader.attach (fun b -> Disk.read disk b))).Rae_format.Reader.sb
          .Rae_format.Superblock.geometry in
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:4 (fun _ -> '\000');
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:5 (fun _ -> '\000');
  let config = { Shadow.default_config with Shadow.fsck_on_attach = true } in
  match Shadow.attach ~config (Device.of_disk disk) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fsck_on_attach accepted a corrupt image"

(* ---- equivalence with the specification ---- *)

let snapshot_shadow sh =
  (* Rebuild a Spec-comparable view by walking the shadow through its own
     public API. *)
  let rec walk path acc =
    let names = ok (Shadow.readdir sh (p path)) in
    List.fold_left
      (fun acc name ->
        let child = if path = "/" then "/" ^ name else path ^ "/" ^ name in
        (* Use lookup without following for kind via readlink probe. *)
        match Shadow.readlink sh (p child) with
        | Ok target -> (child, `Symlink target) :: acc
        | Error Errno.EINVAL -> (
            let st = ok (Shadow.stat sh (p child)) in
            match st.Types.st_kind with
            | Types.Directory -> walk child ((child, `Dir) :: acc)
            | Types.Regular ->
                let fd = ok (Shadow.openf sh (p child) Types.flags_ro) in
                let data = ok (Shadow.pread sh fd ~off:0 ~len:st.Types.st_size) in
                ignore (ok (Shadow.close sh fd));
                (child, `File data) :: acc
            | Types.Symlink -> acc (* unreachable: stat follows *))
        | Error e -> Alcotest.failf "walk %s: %s" child (Errno.to_string e))
      acc names
  in
  List.sort compare (walk "/" [])

let snapshot_spec sp =
  let snap = Spec.snapshot sp in
  snap.Spec.State.entries
  |> List.filter_map (fun e ->
         if e.Spec.State.e_path = "/" || String.length e.Spec.State.e_path > 0 && e.Spec.State.e_path.[0] = '!' then None
         else
           match e.Spec.State.e_kind with
           | Types.Directory -> Some (e.Spec.State.e_path, `Dir)
           | Types.Regular -> Some (e.Spec.State.e_path, `File e.Spec.State.e_content)
           | Types.Symlink -> Some (e.Spec.State.e_path, `Symlink e.Spec.State.e_content))
  |> List.sort compare

let run_equivalence ~seed ~count =
  let rng = Rae_util.Rng.create seed in
  let ops = Rae_workload.Workload.uniform rng ~count in
  let sp = Spec.make () in
  let _disk, sh = mk_shadow () in
  List.iteri
    (fun i op ->
      let ro = Spec.exec sp op in
      let so = Shadow.exec sh op in
      if not (Op.outcome_equal ro so) then
        Alcotest.failf "op %d %s: spec %s, shadow %s" i (Op.to_string op)
          (Format.asprintf "%a" Op.pp_outcome ro)
          (Format.asprintf "%a" Op.pp_outcome so))
    ops;
  (* Final state equivalence, contents included. *)
  let a = snapshot_spec sp and b = snapshot_shadow sh in
  if a <> b then
    Alcotest.failf "final states differ after %d ops (seed %Ld): %d vs %d entries" count seed
      (List.length a) (List.length b)

let test_equivalence_seeds () =
  List.iter (fun seed -> run_equivalence ~seed ~count:300) [ 1L; 2L; 3L; 42L; 99L ]

let prop_shadow_equals_spec =
  QCheck2.Test.make ~name:"shadow == spec on random traces" ~count:40
    QCheck2.Gen.(pair ui64 (int_range 20 200))
    (fun (seed, count) ->
      run_equivalence ~seed ~count;
      true)

let test_profile_traces_equivalent () =
  (* The profile workloads (mostly-succeeding realistic shapes) must also
     agree, including fd-number allocation across open/close churn. *)
  List.iter
    (fun profile ->
      let rng = Rae_util.Rng.create 7L in
      let ops = Rae_workload.Workload.ops profile rng ~count:200 in
      let sp = Spec.make () in
      let _disk, sh = mk_shadow () in
      List.iteri
        (fun i op ->
          let ro = Spec.exec sp op in
          let so = Shadow.exec sh op in
          if not (Op.outcome_equal ro so) then
            Alcotest.failf "%s op %d %s: spec %s, shadow %s"
              (Rae_workload.Workload.profile_name profile)
              i (Op.to_string op)
              (Format.asprintf "%a" Op.pp_outcome ro)
              (Format.asprintf "%a" Op.pp_outcome so))
        ops)
    Rae_workload.Workload.all_profiles

(* ---- fast paths vs naive execution ---- *)

let naive_config = { Shadow.default_config with Shadow.fast_paths = false }

let run_fast_vs_naive ~seed ~count =
  let rng = Rae_util.Rng.create seed in
  let ops = Rae_workload.Workload.uniform rng ~count in
  let _d1, fast = mk_shadow () in
  let _d2, naive = mk_shadow ~config:naive_config () in
  List.iteri
    (fun i op ->
      let fo = Shadow.exec fast op in
      let no = Shadow.exec naive op in
      if not (Op.outcome_equal fo no) then
        Alcotest.failf "op %d %s: fast %s, naive %s" i (Op.to_string op)
          (Format.asprintf "%a" Op.pp_outcome fo)
          (Format.asprintf "%a" Op.pp_outcome no))
    ops;
  if snapshot_shadow fast <> snapshot_shadow naive then
    Alcotest.failf "fast/naive final states differ after %d ops (seed %Ld)" count seed

let prop_fast_equals_naive =
  QCheck2.Test.make ~name:"fast_paths == naive walk on random traces" ~count:30
    QCheck2.Gen.(pair ui64 (int_range 20 200))
    (fun (seed, count) ->
      run_fast_vs_naive ~seed ~count;
      true)

let test_cache_invalidation_adversary () =
  (* Interleave lookups (cache warmers) with every namespace mutation that
     could leave a resolution or dirent-index entry stale. *)
  let _disk, sh = mk_shadow () in
  let expect_enoent what r =
    match r with
    | Error Errno.ENOENT -> ()
    | Ok _ -> Alcotest.failf "%s: stale cached resolution survived" what
    | Error e -> Alcotest.failf "%s: expected ENOENT, got %s" what (Errno.to_string e)
  in
  ignore (ok (Shadow.mkdir sh (p "/a") ~mode:0o755));
  ignore (ok (Shadow.mkdir sh (p "/a/b") ~mode:0o755));
  ignore (ok (Shadow.create sh (p "/a/b/f") ~mode:0o644));
  ignore (ok (Shadow.lookup sh (p "/a/b/f")));
  ignore (ok (Shadow.stat sh (p "/a/b")));
  (* Rename the middle component out from under the cached resolution. *)
  ignore (ok (Shadow.rename sh (p "/a/b") (p "/a/c")));
  expect_enoent "lookup after dir rename" (Shadow.lookup sh (p "/a/b/f"));
  ignore (ok (Shadow.lookup sh (p "/a/c/f")));
  (* Unlink, then recreate the same name as a different kind. *)
  ignore (ok (Shadow.unlink sh (p "/a/c/f")));
  expect_enoent "lookup after unlink" (Shadow.lookup sh (p "/a/c/f"));
  ignore (ok (Shadow.mkdir sh (p "/a/c/f") ~mode:0o755));
  let st = ok (Shadow.stat sh (p "/a/c/f")) in
  (match st.Types.st_kind with
  | Types.Directory -> ()
  | _ -> Alcotest.fail "recreated entry resolved to the stale file inode");
  (* rmdir frees the inode: both the resolution and the dirent index must drop. *)
  ignore (ok (Shadow.rmdir sh (p "/a/c/f")));
  expect_enoent "readdir of removed dir" (Shadow.readdir sh (p "/a/c/f"));
  Alcotest.(check (list string)) "parent listing updated" [] (ok (Shadow.readdir sh (p "/a/c")));
  (* Symlink replacement: the new link must be followed, not the cached one. *)
  ignore (ok (Shadow.symlink sh ~target:"/a/c" (p "/ln")));
  ignore (ok (Shadow.stat sh (p "/ln")));
  ignore (ok (Shadow.unlink sh (p "/ln")));
  ignore (ok (Shadow.symlink sh ~target:"/nowhere" (p "/ln")));
  expect_enoent "stat through replaced symlink" (Shadow.stat sh (p "/ln"))

let test_window_equals_per_op () =
  (* Record a trace autonomously, then fold it both per-op and as one
     batched window on fresh twins: identical tallies and identical state. *)
  let rng = Rae_util.Rng.create 11L in
  let ops = Rae_workload.Workload.uniform rng ~count:150 in
  let _dr, recorder = mk_shadow () in
  let recorded = List.mapi (fun i op -> { Op.op; outcome = Shadow.exec recorder op; seq = i }) ops in
  let _d1, per_op = mk_shadow () in
  let m, d, s =
    List.fold_left
      (fun (m, d, s) r ->
        match Shadow.exec_constrained per_op r with
        | Shadow.Matches -> (m + 1, d, s)
        | Shadow.Divergence _ -> (m, d + 1, s)
        | Shadow.Skipped_error | Shadow.Skipped_sync -> (m, d, s + 1))
      (0, 0, 0) recorded
  in
  let _d2, windowed = mk_shadow () in
  let w = Shadow.exec_constrained_window windowed recorded in
  Alcotest.(check int) "ops" (List.length recorded) w.Shadow.w_ops;
  Alcotest.(check int) "matches" m w.Shadow.w_matches;
  Alcotest.(check int) "divergences" d w.Shadow.w_divergences;
  Alcotest.(check int) "skipped" s w.Shadow.w_skipped;
  if snapshot_shadow per_op <> snapshot_shadow windowed then
    Alcotest.fail "windowed and per-op folds reached different states";
  (* The window amortizes the per-mutation epilogue, so it must do strictly
     fewer runtime checks than per-op replay of the same trace. *)
  Alcotest.(check bool) "window amortizes checks" true
    (Shadow.checks_performed windowed < Shadow.checks_performed per_op)

let test_fd_table_exposed () =
  let _disk, sh = mk_shadow () in
  ignore (ok (Shadow.create sh (p "/f") ~mode:0o644));
  let fd = ok (Shadow.openf sh (p "/f") Types.flags_rw) in
  (match Shadow.fd_table sh with
  | [ (fd', ino, flags) ] ->
      Alcotest.(check int) "fd" fd fd';
      Alcotest.(check int) "ino" 2 ino;
      Alcotest.(check bool) "flags" true (flags = Types.flags_rw)
  | other -> Alcotest.failf "unexpected fd table size %d" (List.length other));
  ignore (ok (Shadow.close sh fd))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_shadowfs"
    [
      ( "overlay",
        [
          Alcotest.test_case "copy-on-write" `Quick test_overlay_cow;
          Alcotest.test_case "dirty sorted" `Quick test_overlay_sorted_dirty;
        ] );
      ( "shadow",
        [
          Alcotest.test_case "never writes the device" `Quick test_shadow_never_writes_device;
          Alcotest.test_case "smoke" `Quick test_shadow_smoke;
          Alcotest.test_case "indirect blocks" `Quick test_shadow_large_file_indirect;
          Alcotest.test_case "ENOSPC" `Quick test_shadow_enospc;
          Alcotest.test_case "fd table" `Quick test_fd_table_exposed;
        ] );
      ( "checks",
        [
          Alcotest.test_case "counted / disableable" `Quick test_checks_counted;
          Alcotest.test_case "violation on corrupt inode" `Quick test_violation_on_corrupt_inode;
          Alcotest.test_case "violation on crafted dirent" `Quick test_violation_on_crafted_dirent;
          Alcotest.test_case "fsck_on_attach" `Quick test_fsck_on_attach_rejects;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fixed seeds" `Quick test_equivalence_seeds;
          Alcotest.test_case "profile traces" `Quick test_profile_traces_equivalent;
          q prop_shadow_equals_spec;
        ] );
      ( "fast-paths",
        [
          Alcotest.test_case "cache invalidation adversary" `Quick test_cache_invalidation_adversary;
          Alcotest.test_case "window == per-op fold" `Quick test_window_equals_per_op;
          q prop_fast_equals_naive;
        ] );
    ]
