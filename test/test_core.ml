(* End-to-end tests for rae_core: transparent masking of every bug class,
   state reconstruction fidelity, fd preservation, delegated sync,
   discrepancy reporting, graceful degradation. *)

open Rae_vfs
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Report = Rae_core.Report
module Spec = Rae_specfs.Spec
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Layout = Rae_format.Layout

let p = Path.parse_exn
let bs = Layout.block_size
let ok = Result.get_ok

let arm ?(rng_seed = 9L) ids =
  Bug_registry.arm ~rng:(Rae_util.Rng.create rng_seed) (List.filter_map Bug_registry.find ids)

let mk ?policy ?config ?bugs ?(nblocks = 2048) ?(ninodes = 256) () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes ()));
  let base = ok (Base.mount ?config ?bugs dev) in
  (disk, dev, Controller.make ?policy ~device:dev base)

(* Run a trace through both the controller and the spec, asserting outcome
   equality op by op.  This is the paper's core claim: despite runtime
   errors, applications observe exactly POSIX semantics. *)
let assert_matches_spec ?(expect_recoveries = false) ctl ops =
  let sp = Spec.make () in
  List.iteri
    (fun i op ->
      let want = Spec.exec sp op in
      let got = Controller.exec ctl op in
      if not (Op.outcome_equal want got) then
        Alcotest.failf "op %d %s: spec %s, RAE %s (recoveries so far: %d)" i (Op.to_string op)
          (Format.asprintf "%a" Op.pp_outcome want)
          (Format.asprintf "%a" Op.pp_outcome got)
          (Controller.stats ctl).Controller.recoveries)
    ops;
  if expect_recoveries then
    Alcotest.(check bool) "at least one recovery happened" true
      ((Controller.stats ctl).Controller.recoveries > 0);
  Alcotest.(check (option Alcotest.string)) "not degraded" None (Controller.degraded ctl)

(* ---- healthy-path behaviour ---- *)

let test_passthrough_no_bugs () =
  let _disk, _dev, ctl = mk () in
  let rng = Rae_util.Rng.create 1L in
  assert_matches_spec ctl (Rae_workload.Workload.uniform rng ~count:400);
  Alcotest.(check int) "no recoveries" 0 (Controller.stats ctl).Controller.recoveries

let test_oplog_prunes_at_commit () =
  let _disk, _dev, ctl = mk () in
  ignore (ok (Controller.create ctl (p "/a") ~mode:0o644));
  ignore (ok (Controller.create ctl (p "/b") ~mode:0o644));
  Alcotest.(check int) "window grows" 2 (Controller.stats ctl).Controller.window;
  ignore (ok (Controller.sync ctl));
  Alcotest.(check int) "window pruned at commit" 0 (Controller.stats ctl).Controller.window;
  Alcotest.(check bool) "discards counted" true
    ((Controller.stats ctl).Controller.total_discarded >= 2)

(* ---- masking each bug class ---- *)

let test_mask_panic_bug () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "crafted-name-panic" ]) () in
  ignore (ok (Controller.mkdir ctl (p "/d") ~mode:0o755));
  (* This op panics the base; RAE must mask it. *)
  let ino = Controller.create ctl (p "/d/pwn") ~mode:0o644 in
  Alcotest.(check bool) "operation succeeded" true (Result.is_ok ino);
  Alcotest.(check int) "one recovery" 1 (Controller.stats ctl).Controller.recoveries;
  (* The created file is really there, on a fully working filesystem. *)
  Alcotest.(check bool) "visible afterwards" true
    (Result.is_ok (Controller.lookup ctl (p "/d/pwn")));
  ignore (ok (Controller.create ctl (p "/d/after") ~mode:0o644));
  Alcotest.(check (list string)) "directory consistent" [ "after"; "pwn" ]
    (ok (Controller.readdir ctl (p "/d")))

let test_mask_deterministic_nth_panic () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "dx-hash-panic" ]) () in
  ignore (ok (Controller.create ctl (p "/f") ~mode:0o644));
  (* The 40th lookup panics. *)
  for _ = 1 to 45 do
    Alcotest.(check bool) "every lookup answered" true
      (Result.is_ok (Controller.lookup ctl (p "/f")))
  done;
  Alcotest.(check int) "exactly one recovery" 1 (Controller.stats ctl).Controller.recoveries

let test_mask_warn_bug () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "extent-status-warn" ]) () in
  ignore (ok (Controller.create ctl (p "/f") ~mode:0o644));
  for i = 1 to 6 do
    Alcotest.(check bool) "truncate ok" true (Result.is_ok (Controller.truncate ctl (p "/f") ~size:i))
  done;
  Alcotest.(check int) "warn triggered recovery" 1 (Controller.stats ctl).Controller.recoveries;
  (match Controller.last_recovery ctl with
  | Some r -> (
      match r.Report.r_trigger with
      | Report.Warning_storm { bug; _ } -> Alcotest.(check string) "trigger" "extent-status-warn" bug
      | other -> Alcotest.failf "wrong trigger %s" (Report.trigger_to_string other))
  | None -> Alcotest.fail "no recovery report")

let test_warn_coinciding_with_commit () =
  (* A WARN on the very operation that triggers the group commit: the
     window is already durable and validated, so the controller must NOT
     replay it (that would re-execute durable ops); it accepts the result
     and continues. *)
  let _disk, _dev, ctl =
    mk
      ~config:{ Base.default_config with Base.commit_interval = 5 }
      ~bugs:(arm [ "extent-status-warn" ])
      ()
  in
  let sp = Spec.make () in
  let step op =
    let want = Spec.exec sp op and got = Controller.exec ctl op in
    Alcotest.(check bool) (Op.to_string op) true (Op.outcome_equal want got)
  in
  step (Op.Create (p "/f", 0o644)) (* mutation 1 *);
  List.iter (fun i -> step (Op.Truncate (p "/f", i))) [ 1; 2; 3 ] (* mutations 2-4 *);
  (* Mutation 5 = 5th truncate: fires the WARN *and* the interval commit. *)
  step (Op.Truncate (p "/f", 4));
  Alcotest.(check int) "no recovery for a post-commit warn" 0
    (Controller.stats ctl).Controller.recoveries;
  Alcotest.(check int) "window pruned by the commit" 0 (Controller.stats ctl).Controller.window;
  (* Life goes on, consistently. *)
  step (Op.Truncate (p "/f", 5));
  step (Op.Stat (p "/f"));
  Alcotest.(check (option Alcotest.string)) "not degraded" None (Controller.degraded ctl)

let test_mask_silent_corruption () =
  (* Corruption is injected on the 30th create and detected at the commit
     barrier; RAE recovers and the application never notices. *)
  let _disk, _dev, ctl =
    mk
      ~config:{ Base.default_config with Base.commit_interval = 10 }
      ~bugs:(arm [ "mballoc-freecount" ])
      ()
  in
  let sp = Spec.make () in
  for i = 1 to 40 do
    let op = Op.Create (p (Printf.sprintf "/f%03d" i), 0o644) in
    let want = Spec.exec sp op and got = Controller.exec ctl op in
    Alcotest.(check bool) (Printf.sprintf "create %d matches spec" i) true
      (Op.outcome_equal want got)
  done;
  Alcotest.(check bool) "recovered from validation failure" true
    ((Controller.stats ctl).Controller.recoveries >= 1);
  (match Controller.last_recovery ctl with
  | Some { Report.r_trigger = Report.Validation _; _ } -> ()
  | Some r -> Alcotest.failf "wrong trigger %s" (Report.trigger_to_string r.Report.r_trigger)
  | None -> Alcotest.fail "no report")

let test_mask_hang () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "fsync-deadlock" ]) () in
  let fd = ok (Controller.openf ctl (p "/f") Types.flags_create) in
  for i = 1 to 20 do
    ignore (ok (Controller.pwrite ctl fd ~off:(i * 10) "x"));
    Alcotest.(check bool) (Printf.sprintf "fsync %d ok" i) true
      (Result.is_ok (Controller.fsync ctl fd))
  done;
  Alcotest.(check int) "hang recovered once" 1 (Controller.stats ctl).Controller.recoveries;
  (match Controller.last_recovery ctl with
  | Some r ->
      Alcotest.(check bool) "fsync was delegated to the rebooted base" true
        r.Report.r_delegated_sync
  | None -> Alcotest.fail "no report")

let test_mask_nondeterministic_bug () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "rename-race-panic" ]) () in
  ignore (ok (Controller.create ctl (p "/f0") ~mode:0o644));
  for i = 0 to 199 do
    Alcotest.(check bool) "rename ok" true
      (Result.is_ok
         (Controller.rename ctl (p (Printf.sprintf "/f%d" i)) (p (Printf.sprintf "/f%d" (i + 1)))))
  done;
  Alcotest.(check bool) "racy bug recovered at least once" true
    ((Controller.stats ctl).Controller.recoveries > 0);
  Alcotest.(check bool) "file survived 200 renames" true
    (Result.is_ok (Controller.lookup ctl (p "/f200")))

(* ---- state reconstruction fidelity ---- *)

let test_fd_survives_recovery () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "crafted-name-panic" ]) () in
  let fd = ok (Controller.openf ctl (p "/log") Types.flags_create) in
  ignore (ok (Controller.pwrite ctl fd ~off:0 "before-crash "));
  (* Trigger a panic on an unrelated operation. *)
  ignore (Controller.create ctl (p "/pwn") ~mode:0o644);
  Alcotest.(check int) "recovered" 1 (Controller.stats ctl).Controller.recoveries;
  (* The application's descriptor still works, with the data intact. *)
  ignore (ok (Controller.pwrite ctl fd ~off:13 "after-crash"));
  Alcotest.(check string) "descriptor and data preserved" "before-crash after-crash"
    (ok (Controller.pread ctl fd ~off:0 ~len:100));
  ignore (ok (Controller.close ctl fd))

let test_orphan_survives_recovery () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "crafted-name-panic" ]) () in
  let fd = ok (Controller.openf ctl (p "/doomed") Types.flags_create) in
  ignore (ok (Controller.pwrite ctl fd ~off:0 "orphan data"));
  ignore (ok (Controller.unlink ctl (p "/doomed")));
  ignore (Controller.create ctl (p "/pwn") ~mode:0o644) (* panic + recovery *);
  Alcotest.(check string) "unlinked-but-open file survives recovery" "orphan data"
    (ok (Controller.pread ctl fd ~off:0 ~len:100));
  ignore (ok (Controller.close ctl fd))

let test_inode_and_fd_numbers_stable () =
  (* Paper §2.2: "the inode number of a file and file descriptor numbers
     must be identical to the applications for completed operations". *)
  let _disk, _dev, ctl = mk ~bugs:(arm [ "crafted-name-panic" ]) () in
  let ino_a = ok (Controller.create ctl (p "/a") ~mode:0o644) in
  let fd_a = ok (Controller.openf ctl (p "/a") Types.flags_ro) in
  ignore (Controller.create ctl (p "/pwn") ~mode:0o644) (* recovery *);
  let st = ok (Controller.fstat ctl fd_a) in
  Alcotest.(check int) "ino unchanged through recovery" ino_a st.Types.st_ino;
  let st2 = ok (Controller.stat ctl (p "/a")) in
  Alcotest.(check int) "path agrees" ino_a st2.Types.st_ino

let test_recovery_report_contents () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "crafted-name-panic" ]) () in
  ignore (ok (Controller.create ctl (p "/w1") ~mode:0o644));
  ignore (ok (Controller.create ctl (p "/w2") ~mode:0o644));
  ignore (Controller.unlink ctl (p "/missing")) (* an Error op: skipped in replay *);
  ignore (Controller.create ctl (p "/pwn") ~mode:0o644);
  match Controller.last_recovery ctl with
  | None -> Alcotest.fail "no recovery report"
  | Some r ->
      Alcotest.(check int) "window covers the three ops" 3 r.Report.r_window;
      Alcotest.(check int) "two replayed" 2 r.Report.r_replayed;
      Alcotest.(check int) "one skipped (errored in base)" 1 r.Report.r_skipped;
      Alcotest.(check bool) "handoff carried blocks" true (r.Report.r_handoff_blocks > 0);
      Alcotest.(check bool) "recovered" true (r.Report.r_outcome = Report.Recovered);
      Alcotest.(check bool) "report prints" true
        (String.length (Format.asprintf "%a" Report.pp_recovery r) > 0)

let test_durable_after_recovery () =
  (* Recovery commits the reconstructed state: a crash right after must
     preserve it. *)
  let disk, dev, ctl = mk ~bugs:(arm [ "crafted-name-panic" ]) () in
  ignore (ok (Controller.create ctl (p "/w1") ~mode:0o644));
  ignore (ok (Controller.create ctl (p "/pwn") ~mode:0o644)) (* recovery *);
  ignore disk;
  (* Simulate a process crash: fresh mount of the same device. *)
  let base2 = ok (Base.mount dev) in
  Alcotest.(check bool) "w1 durable" true (Result.is_ok (Base.lookup base2 (p "/w1")));
  Alcotest.(check bool) "pwn durable" true (Result.is_ok (Base.lookup base2 (p "/pwn")));
  Alcotest.(check bool) "image clean" true
    (Rae_fsck.Fsck.clean (Rae_fsck.Fsck.check_device dev))

(* ---- full-workload availability (experiment E8's core assertion) ---- *)

let test_availability_under_all_bugs () =
  (* Arm every deterministic bug except the wrong-result one (which by
     design produces an application-visible wrong answer, detectable only
     by cross-checking) and run every profile: all outcomes must match the
     spec exactly. *)
  (* isize-extension and stat-size-skew are excluded: both are in the
     app-visible-before-detection class (the paper's undetected NoCrash
     cell) — the application can observe the corruption in the op that
     triggers it, before any commit barrier can catch it. *)
  let ids =
    [
      "dx-hash-panic";
      "extent-status-warn";
      "mballoc-freecount";
      "dirent-reclen-zero";
      "orphan-close-uaf";
      "fsync-deadlock";
    ]
  in
  List.iter
    (fun profile ->
      let _disk, _dev, ctl =
        mk ~config:{ Base.default_config with Base.commit_interval = 16 } ~bugs:(arm ids) ()
      in
      let rng = Rae_util.Rng.create 77L in
      let ops = Rae_workload.Workload.ops profile rng ~count:300 in
      assert_matches_spec ctl ops)
    Rae_workload.Workload.all_profiles

let prop_availability_random_traces =
  QCheck2.Test.make ~name:"RAE == spec under armed bugs (random traces)" ~count:15
    QCheck2.Gen.(pair ui64 (int_range 50 250))
    (fun (seed, count) ->
      let ids = [ "dx-hash-panic"; "mballoc-freecount"; "orphan-close-uaf"; "extent-status-warn" ] in
      let _disk, _dev, ctl =
        mk ~config:{ Base.default_config with Base.commit_interval = 8 } ~bugs:(arm ids) ()
      in
      let rng = Rae_util.Rng.create seed in
      let ops = Rae_workload.Workload.uniform rng ~count in
      let sp = Spec.make () in
      List.for_all
        (fun op ->
          let want = Spec.exec sp op and got = Controller.exec ctl op in
          Op.outcome_equal want got)
        ops)

let test_isize_corruption_caught_and_recovered () =
  (* isize-extension oversizes a cached inode.  The window between the
     corruption and the next commit barrier may surface wrong results to
     the application (EFBIG on appends) — the paper's undetected-error
     window — but the commit validation must catch it, RAE must recover,
     and the filesystem must be fully consistent afterwards. *)
  let _disk, dev, ctl =
    mk ~config:{ Base.default_config with Base.commit_interval = 8 } ~bugs:(arm [ "isize-extension" ]) ()
  in
  let fd = ok (Controller.openf ctl (p "/victim") Types.flags_create) in
  for i = 0 to 59 do
    (* pwrite #50 fires the bug; outcomes in the window may be wrong. *)
    ignore (Controller.pwrite ctl fd ~off:(i * 8) "payload!")
  done;
  Alcotest.(check bool) "validation recovery happened" true
    (List.exists
       (fun r -> match r.Report.r_trigger with Report.Validation _ -> true | _ -> false)
       (Controller.recoveries ctl));
  Alcotest.(check (option Alcotest.string)) "not degraded" None (Controller.degraded ctl);
  (* Post-recovery the file works and the image is consistent. *)
  ignore (ok (Controller.pwrite ctl fd ~off:0 "healed!!"));
  ignore (ok (Controller.close ctl fd));
  ignore (ok (Controller.sync ctl));
  Alcotest.(check bool) "fsck clean after recovery" true
    (Rae_fsck.Fsck.clean (Rae_fsck.Fsck.check_device dev))

let prop_recovery_preserves_whole_tree =
  (* The strongest reconstruction property: inject a panic at a random
     point in a random trace, then walk the ENTIRE tree (kinds, sizes,
     nlinks, modes, full contents) through the public API and compare with
     the specification. *)
  QCheck2.Test.make ~name:"post-recovery tree identical to spec" ~count:15
    QCheck2.Gen.(pair ui64 (int_range 1 30))
    (fun (seed, nth) ->
      let bug =
        {
          Bug_registry.id = "prop-panic";
          determinism = Bug_registry.Deterministic;
          trigger = Bug_registry.Nth_op_of_kind (Op.K_pwrite, nth);
          consequence = Bug_registry.Panic;
          modeled_after = "property-test injection";
        }
      in
      let _disk, _dev, ctl =
        mk ~config:{ Base.default_config with Base.commit_interval = 16 }
          ~bugs:(Bug_registry.arm [ bug ]) ()
      in
      let sp = Spec.make () in
      let ops = Rae_workload.Workload.uniform (Rae_util.Rng.create seed) ~count:150 in
      List.iter
        (fun op ->
          let want = Spec.exec sp op and got = Controller.exec ctl op in
          if not (Op.outcome_equal want got) then
            QCheck2.Test.fail_reportf "outcome mismatch on %s" (Op.to_string op))
        ops;
      let snap_spec = Rae_workload.Snapshot.capture ~exec:Spec.exec sp in
      let snap_rae = Rae_workload.Snapshot.capture ~exec:Controller.exec ctl in
      match (snap_spec, snap_rae) with
      | Ok a, Ok b ->
          if Rae_workload.Snapshot.equal a b then true
          else
            QCheck2.Test.fail_reportf "trees differ: %s"
              (String.concat "; " (Rae_workload.Snapshot.diff a b))
      | Error e, _ | _, Error e -> QCheck2.Test.fail_reportf "walk failed: %s" e)

(* ---- warm-shadow checkpointing ---- *)

let ckpt_policy =
  { Controller.default_policy with Controller.ckpt_enabled = true; Controller.ckpt_fold_interval = 8 }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_checkpoint_refuses_uncommitted_window () =
  (* Disabled by policy: the API must say so, not silently no-op. *)
  let _disk, _dev, plain = mk () in
  (match Controller.checkpoint_now plain with
  | Error msg ->
      Alcotest.(check bool) "mentions policy" true (contains msg "disabled")
  | Ok () -> Alcotest.fail "checkpoint_now must fail when disabled");
  (* Enabled: a cut is refused while the op window holds an uncommitted
     suffix — the disk does not yet reflect the recorded ops, so a cut
     would capture an S0 the oplog is not relative to. *)
  let _disk, _dev, ctl = mk ~policy:ckpt_policy () in
  Alcotest.(check bool) "initial cut at mount" true (Controller.checkpoint_valid ctl);
  ignore (ok (Controller.create ctl (p "/a") ~mode:0o644));
  (match Controller.checkpoint_now ctl with
  | Error msg ->
      Alcotest.(check bool) "mentions uncommitted window" true (contains msg "uncommitted")
  | Ok () -> Alcotest.fail "cut must refuse a non-empty op window");
  (* After a sync the window is durable and empty: the cut succeeds. *)
  ignore (ok (Controller.sync ctl));
  (match Controller.checkpoint_now ctl with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "cut after sync failed: %s" msg);
  Alcotest.(check bool) "still valid" true (Controller.checkpoint_valid ctl);
  match Controller.checkpoint_stats ctl with
  | None -> Alcotest.fail "stats must exist when enabled"
  | Some s -> Alcotest.(check bool) "cuts counted" true (s.Rae_core.Checkpoint.cuts >= 2)

let test_seeded_recovery_replays_only_delta () =
  (* Long uncommitted window, folded in the background: recovery must seed
     from the warm shadow and replay only the unfolded suffix. *)
  let _disk, _dev, ctl =
    mk ~policy:ckpt_policy
      ~config:{ Base.default_config with Base.commit_interval = max_int }
      ~bugs:(arm [ "crafted-name-panic" ])
      ()
  in
  for i = 1 to 20 do
    ignore (ok (Controller.create ctl (p (Printf.sprintf "/f%d" i)) ~mode:0o644))
  done;
  let window = (Controller.stats ctl).Controller.window in
  Alcotest.(check int) "window holds the whole trace" 20 window;
  (* The panic: seeded recovery, Δ replay. *)
  ignore (ok (Controller.create ctl (p "/pwn") ~mode:0o644));
  Alcotest.(check int) "one recovery" 1 (Controller.stats ctl).Controller.recoveries;
  Alcotest.(check (option Alcotest.string)) "not degraded" None (Controller.degraded ctl);
  (match Controller.last_recovery ctl with
  | None -> Alcotest.fail "no recovery report"
  | Some r ->
      Alcotest.(check bool) "report marked seeded" true r.Report.r_seeded;
      Alcotest.(check bool)
        (Printf.sprintf "replayed %d < window %d" r.Report.r_replayed window)
        true
        (r.Report.r_replayed < window));
  (match Controller.checkpoint_stats ctl with
  | None -> Alcotest.fail "checkpoint stats missing"
  | Some s ->
      Alcotest.(check int) "seeded once" 1 s.Rae_core.Checkpoint.seeded;
      Alcotest.(check bool) "background folds happened" true (s.Rae_core.Checkpoint.folds >= 1);
      Alcotest.(check int) "no cold fallback" 0 s.Rae_core.Checkpoint.fallbacks);
  (* The recovered state is complete: every file, including the one that
     triggered the panic, is visible on a working filesystem. *)
  for i = 1 to 20 do
    Alcotest.(check bool) "pre-panic file visible" true
      (Result.is_ok (Controller.lookup ctl (p (Printf.sprintf "/f%d" i))))
  done;
  Alcotest.(check bool) "panic op's file visible" true
    (Result.is_ok (Controller.lookup ctl (p "/pwn")))

(* The PR's centerpiece property: replay-from-checkpoint is indistinguishable
   from replay-from-S0, for arbitrary op sequences and arbitrary cut points.
   This is the module-level statement — fold a prefix into a warm shadow,
   seed a fresh instance from its exported state, replay the suffix, and
   compare against one shadow that replayed everything from S0. *)
let prop_checkpoint_replay_equivalence =
  QCheck2.Test.make ~name:"replay-from-checkpoint = replay-from-S0" ~count:25
    QCheck2.Gen.(triple ui64 (int_range 20 120) (int_range 0 100))
    (fun (seed, count, cut_pct) ->
      let module Shadow = Rae_shadowfs.Shadow in
      let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:2048 () in
      let dev = Device.of_disk disk in
      ignore (ok (Base.mkfs dev ~ninodes:256 ()));
      let base =
        ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = max_int } dev)
      in
      (* Execute a sync-free trace against the base: the journal never
         commits, so the disk stays at S0 and every mutation lands in the
         window — exactly the state a recovery replays over. *)
      let ops =
        List.filter
          (fun op -> not (Op.is_sync op))
          (Rae_workload.Workload.uniform (Rae_util.Rng.create seed) ~count)
      in
      let entries =
        List.filter Op.is_mutation ops
        |> List.mapi (fun seq op -> { Op.op; outcome = Base.exec base op; seq })
      in
      let replay sh = List.iter (fun r -> ignore (Shadow.exec_constrained sh r)) in
      let full = ok (Shadow.attach dev) in
      replay full entries;
      (* The checkpointed arm: warm shadow folds the prefix, recovery seeds
         from its exported state and replays only the suffix. *)
      let k = cut_pct * List.length entries / 100 in
      let warm = ok (Shadow.attach dev) in
      replay warm (List.filteri (fun i _ -> i < k) entries);
      let seeded = ok (Shadow.attach_from (Shadow.export_state warm) dev) in
      replay seeded (List.filteri (fun i _ -> i >= k) entries);
      if Rae_core.Differential.shadow_states_equal full seeded then true
      else
        QCheck2.Test.fail_reportf "states diverge at cut %d/%d (seed %Ld)" k
          (List.length entries) seed)

(* The controller-level statement: with checkpointing on, applications
   observe exactly the same outcomes and the same final tree as with it
   off — and both match the executable POSIX spec — even when panics are
   injected at arbitrary positions in random traces. *)
let prop_checkpoint_controller_equivalence =
  QCheck2.Test.make ~name:"ckpt-on = ckpt-off = spec under random panics" ~count:15
    QCheck2.Gen.(triple ui64 (int_range 60 200) (int_range 1 40))
    (fun (seed, count, nth) ->
      let bug () =
        Bug_registry.arm
          [
            {
              Bug_registry.id = "prop-ckpt-panic";
              determinism = Bug_registry.Deterministic;
              trigger = Bug_registry.Nth_op_of_kind (Op.K_create, nth);
              consequence = Bug_registry.Panic;
              modeled_after = "property-test injection";
            };
          ]
      in
      let mk_arm policy =
        let _disk, _dev, ctl =
          mk ~policy
            ~config:{ Base.default_config with Base.commit_interval = 16 }
            ~bugs:(bug ()) ()
        in
        ctl
      in
      let on = mk_arm ckpt_policy and off = mk_arm Controller.default_policy in
      let sp = Spec.make () in
      let ops = Rae_workload.Workload.uniform (Rae_util.Rng.create seed) ~count in
      List.iter
        (fun op ->
          let want = Spec.exec sp op in
          let got_on = Controller.exec on op and got_off = Controller.exec off op in
          if not (Op.outcome_equal want got_on) then
            QCheck2.Test.fail_reportf "ckpt-on diverges from spec on %s" (Op.to_string op);
          if not (Op.outcome_equal want got_off) then
            QCheck2.Test.fail_reportf "ckpt-off diverges from spec on %s" (Op.to_string op))
        ops;
      (if Controller.degraded on <> None then QCheck2.Test.fail_report "ckpt-on degraded");
      (* Checkpointing must only change recovery latency, never its path
         out: every recovery seeded, none fell back cold. *)
      (match Controller.checkpoint_stats on with
      | Some s when s.Rae_core.Checkpoint.fallbacks > 0 ->
          QCheck2.Test.fail_reportf "%d cold fallback(s)" s.Rae_core.Checkpoint.fallbacks
      | _ -> ());
      let snap_on = Rae_workload.Snapshot.capture ~exec:Controller.exec on in
      let snap_off = Rae_workload.Snapshot.capture ~exec:Controller.exec off in
      match (snap_on, snap_off) with
      | Ok a, Ok b ->
          if Rae_workload.Snapshot.equal a b then true
          else
            QCheck2.Test.fail_reportf "trees differ: %s"
              (String.concat "; " (Rae_workload.Snapshot.diff a b))
      | Error e, _ | _, Error e -> QCheck2.Test.fail_reportf "walk failed: %s" e)

(* ---- cross-checking finds wrong-result bugs (E9) ---- *)

let test_cross_check_finds_wrong_results () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "stat-size-skew"; "crafted-name-panic" ]) () in
  let fd = ok (Controller.openf ctl (p "/f") Types.flags_create) in
  ignore (ok (Controller.pwrite ctl fd ~off:0 "12345"));
  ignore (ok (Controller.close ctl fd));
  (* The 20th stat returns a wrong size — undetectable in-line. *)
  for _ = 1 to 20 do
    ignore (Controller.stat ctl (p "/f"))
  done;
  Alcotest.(check int) "no recovery from a wrong result alone" 0
    (Controller.stats ctl).Controller.recoveries;
  (* A later panic forces replay; the cross-check exposes the lie. *)
  ignore (Controller.create ctl (p "/pwn") ~mode:0o644);
  let ds = Controller.discrepancies ctl in
  Alcotest.(check bool) "discrepancy reported" true (List.length ds >= 1);
  (match ds with
  | d :: _ -> (
      match (d.Report.d_base, d.Report.d_shadow) with
      | Ok (Op.St b), Ok (Op.St s) ->
          Alcotest.(check int) "base lied by one" (s.Types.st_size + 1) b.Types.st_size
      | _ -> Alcotest.fail "expected stat outcomes")
  | [] -> ());
  Alcotest.(check (option Alcotest.string)) "recovery still succeeded (policy: continue)" None
    (Controller.degraded ctl)

(* ---- the restart-only baseline loses what RAE preserves ---- *)

let test_restart_only_baseline_loses_state () =
  let mk_base_only () =
    let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:2048 () in
    let dev = Device.of_disk disk in
    ignore (ok (Base.mkfs dev ~ninodes:256 ()));
    (dev, ok (Base.mount ~bugs:(arm [ "crafted-name-panic" ]) dev))
  in
  let _dev, base = mk_base_only () in
  let ro = Rae_core.Restart_only.make base in
  let exec = Rae_core.Restart_only.exec ro in
  (* Build volatile state: a file with data and an open descriptor. *)
  (match exec (Op.Create (p "/acknowledged", 0o644)) with
  | Ok (Op.Ino _) -> ()
  | _ -> Alcotest.fail "create failed");
  let fd = match exec (Op.Open (p "/acknowledged", Types.flags_rw)) with
    | Ok (Op.Fd fd) -> fd
    | _ -> Alcotest.fail "open failed"
  in
  (* The panic: restart-only recovery gives EIO and rolls back to S0. *)
  (match exec (Op.Create (p "/pwn", 0o644)) with
  | Error Errno.EIO -> ()
  | other -> Alcotest.failf "expected EIO, got %a" Op.pp_outcome other);
  let s = Rae_core.Restart_only.stats ro in
  Alcotest.(check int) "one restart" 1 s.Rae_core.Restart_only.restarts;
  Alcotest.(check bool) "acknowledged work lost" true (s.Rae_core.Restart_only.lost_window_ops >= 1);
  (* The acknowledged file is GONE (it never committed)... *)
  (match exec (Op.Lookup (p "/acknowledged")) with
  | Error Errno.ENOENT -> ()
  | other -> Alcotest.failf "expected rollback, got %a" Op.pp_outcome other);
  (* ...and the descriptor is dead. *)
  (match exec (Op.Pread (fd, 0, 1)) with
  | Error Errno.EBADF -> ()
  | other -> Alcotest.failf "expected EBADF, got %a" Op.pp_outcome other);
  (* Contrast: the same scenario under RAE preserves both (see
     test_fd_survives_recovery); here we just confirm the baseline's loss
     is real, which is exactly the paper's motivation. *)
  ()

(* ---- graceful degradation ---- *)

let test_degrades_on_unrecoverable_image () =
  (* Corrupt the on-disk root directory: the base panics, and the shadow's
     fsck refuses S0.  RAE must degrade to EIO — the process survives. *)
  let disk, _dev, ctl = mk () in
  ignore (ok (Controller.create ctl (p "/x") ~mode:0o644));
  ignore (ok (Controller.sync ctl));
  let g =
    (ok (Rae_format.Reader.attach (fun blk -> Disk.read disk blk))).Rae_format.Reader.sb
      .Rae_format.Superblock.geometry
  in
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:4 (fun _ -> '\000');
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:5 (fun _ -> '\000');
  (* Drop caches so the corruption is read back. *)
  ignore (ok (Base.contained_reboot (Controller.base ctl)));
  (match Controller.lookup ctl (p "/x") with
  | Error Errno.EIO -> ()
  | other ->
      Alcotest.failf "expected EIO, got %s"
        (match other with Ok i -> string_of_int i | Error e -> Errno.to_string e));
  Alcotest.(check bool) "degraded with a reason" true (Controller.degraded ctl <> None);
  (match Controller.last_recovery ctl with
  | Some { Report.r_outcome = Report.Recovery_failed _; _ } -> ()
  | _ -> Alcotest.fail "expected a failed-recovery report");
  (* Subsequent calls fail fast, no exception escapes. *)
  (match Controller.stat ctl (p "/x") with
  | Error Errno.EIO -> ()
  | _ -> Alcotest.fail "degraded controller must return EIO")

let test_recovery_counts_in_stats () =
  let _disk, _dev, ctl = mk ~bugs:(arm [ "crafted-name-panic" ]) () in
  ignore (Controller.create ctl (p "/pwn") ~mode:0o644);
  ignore (Controller.create ctl (p "/pwn2") ~mode:0o644);
  let s = Controller.stats ctl in
  Alcotest.(check int) "ops counted" 2 s.Controller.ops;
  Alcotest.(check int) "one recovery (second name has no 'pwn' component...)" 1 s.Controller.recoveries

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_core"
    [
      ( "common-path",
        [
          Alcotest.test_case "passthrough" `Quick test_passthrough_no_bugs;
          Alcotest.test_case "oplog prunes at commit" `Quick test_oplog_prunes_at_commit;
        ] );
      ( "masking",
        [
          Alcotest.test_case "panic" `Quick test_mask_panic_bug;
          Alcotest.test_case "nth-lookup panic" `Quick test_mask_deterministic_nth_panic;
          Alcotest.test_case "warn" `Quick test_mask_warn_bug;
          Alcotest.test_case "warn coinciding with commit" `Quick test_warn_coinciding_with_commit;
          Alcotest.test_case "silent corruption" `Quick test_mask_silent_corruption;
          Alcotest.test_case "hang + delegated fsync" `Quick test_mask_hang;
          Alcotest.test_case "non-deterministic race" `Quick test_mask_nondeterministic_bug;
        ] );
      ( "reconstruction",
        [
          Alcotest.test_case "fd survives" `Quick test_fd_survives_recovery;
          Alcotest.test_case "orphan survives" `Quick test_orphan_survives_recovery;
          Alcotest.test_case "ino/fd numbers stable" `Quick test_inode_and_fd_numbers_stable;
          Alcotest.test_case "report contents" `Quick test_recovery_report_contents;
          Alcotest.test_case "recovered state durable" `Quick test_durable_after_recovery;
        ] );
      ( "availability",
        [
          Alcotest.test_case "all profiles, all bugs" `Slow test_availability_under_all_bugs;
          Alcotest.test_case "isize corruption caught" `Quick test_isize_corruption_caught_and_recovered;
          q prop_availability_random_traces;
          q prop_recovery_preserves_whole_tree;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "cut refuses uncommitted window" `Quick
            test_checkpoint_refuses_uncommitted_window;
          Alcotest.test_case "seeded recovery replays only the delta" `Quick
            test_seeded_recovery_replays_only_delta;
          q prop_checkpoint_replay_equivalence;
          q prop_checkpoint_controller_equivalence;
        ] );
      ( "cross-check",
        [ Alcotest.test_case "wrong results exposed" `Quick test_cross_check_finds_wrong_results ] );
      ( "baseline",
        [
          Alcotest.test_case "restart-only loses state" `Quick
            test_restart_only_baseline_loses_state;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "unrecoverable image" `Quick test_degrades_on_unrecoverable_image;
          Alcotest.test_case "stats" `Quick test_recovery_counts_in_stats;
        ] );
    ]
