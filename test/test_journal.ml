(* Tests for rae_journal: commit/checkpoint, replay, crash consistency,
   escaping, revocation. *)

open Rae_block
module Journal = Rae_journal.Journal
module Layout = Rae_format.Layout

let bs = Layout.block_size

let setup ?(nblocks = 512) ?(journal_len = 16) () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let dev = Device.of_disk disk in
  let g = Result.get_ok (Layout.compute ~nblocks ~ninodes:64 ~journal_len ()) in
  Journal.format dev g;
  (disk, dev, g)

let attach_exn dev g =
  match Journal.attach dev g with Ok j -> j | Error msg -> Alcotest.failf "attach: %s" msg

let block_of_char c = Bytes.make bs c
let data_blk g i = g.Layout.data_start + i

let test_format_attach () =
  let _disk, dev, g = setup () in
  ignore (attach_exn dev g)

let test_attach_unformatted () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:512 () in
  let dev = Device.of_disk disk in
  let g = Result.get_ok (Layout.compute ~nblocks:512 ~ninodes:64 ~journal_len:16 ()) in
  match Journal.attach dev g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "attached to an unformatted journal"

let test_commit_checkpoints () =
  let disk, dev, g = setup () in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 0) (block_of_char 'a');
  Journal.txn_write txn (data_blk g 1) (block_of_char 'b');
  Journal.commit j txn;
  Alcotest.(check bool) "home 0 written" true (Bytes.equal (Disk.read disk (data_blk g 0)) (block_of_char 'a'));
  Alcotest.(check bool) "home 1 written" true (Bytes.equal (Disk.read disk (data_blk g 1)) (block_of_char 'b'));
  let s = Journal.stats j in
  Alcotest.(check int) "1 commit" 1 s.Journal.commits;
  Alcotest.(check int) "2 blocks" 2 s.Journal.blocks_logged

let test_empty_commit_noop () =
  let disk, dev, g = setup () in
  let j = attach_exn dev g in
  let before = Disk.writes disk in
  Journal.commit j (Journal.begin_txn j);
  Alcotest.(check int) "no io" before (Disk.writes disk);
  Alcotest.(check int) "no commit counted" 0 (Journal.stats j).Journal.commits

let test_txn_write_supersedes () =
  let disk, dev, g = setup () in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 0) (block_of_char 'a');
  Journal.txn_write txn (data_blk g 0) (block_of_char 'b');
  Alcotest.(check int) "one block buffered" 1 (Journal.txn_block_count txn);
  Journal.commit j txn;
  Alcotest.(check bool) "later write wins" true
    (Bytes.equal (Disk.read disk (data_blk g 0)) (block_of_char 'b'))

let test_txn_overwrite_keeps_first_write_order () =
  (* Rewriting a buffered block must overwrite its slot in place: the
     transaction's write order (and hence descriptor tag order) stays the
     order of *first* writes, with the latest image. *)
  let _disk, dev, g = setup () in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 0) (block_of_char 'a');
  Journal.txn_write txn (data_blk g 1) (block_of_char 'b');
  Journal.txn_write txn (data_blk g 2) (block_of_char 'c');
  Journal.txn_write txn (data_blk g 0) (block_of_char 'A');
  Journal.txn_write txn (data_blk g 1) (block_of_char 'B');
  Alcotest.(check int) "three blocks buffered" 3 (Journal.txn_block_count txn);
  let order = List.map fst (Journal.txn_writes txn) in
  Alcotest.(check (list int)) "first-write order preserved"
    [ data_blk g 0; data_blk g 1; data_blk g 2 ]
    order;
  let images = List.map (fun (_, d) -> Bytes.get d 0) (Journal.txn_writes txn) in
  Alcotest.(check (list char)) "latest images win" [ 'A'; 'B'; 'c' ] images

let test_revoke_dedup () =
  (* Revoking the same block repeatedly records it once. *)
  let _disk, dev, g = setup () in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 1) (block_of_char 'm');
  for _ = 1 to 5 do
    Journal.txn_revoke txn (data_blk g 0)
  done;
  Journal.txn_revoke txn (data_blk g 2);
  Journal.txn_revoke txn (data_blk g 0);
  Journal.commit j txn;
  Alcotest.(check int) "duplicate revokes collapsed" 2 (Journal.stats j).Journal.revokes

let test_abort_discards () =
  let disk, dev, g = setup () in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 0) (block_of_char 'a');
  Journal.abort j txn;
  Journal.commit j txn (* now empty: no-op *);
  Alcotest.(check bool) "home untouched" true
    (Bytes.equal (Disk.read disk (data_blk g 0)) (block_of_char '\000'))

let test_replay_clean_is_noop () =
  let _disk, dev, g = setup () in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 0) (block_of_char 'a');
  Journal.commit j txn;
  Alcotest.(check (result int string)) "0 replayed" (Ok 0) (Journal.replay dev g)

(* Crash between journal-commit and checkpoint: replay must re-apply. *)
let test_crash_after_journal_commit () =
  let nblocks = 512 and journal_len = 16 in
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let raw = Device.of_disk disk in
  let g = Result.get_ok (Layout.compute ~nblocks ~ninodes:64 ~journal_len ()) in
  Journal.format raw g;
  let sim, dev = Crashsim.create raw in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 0) (block_of_char 'a');
  Journal.txn_write txn (data_blk g 1) (block_of_char 'b');
  (* Intercept: run commit but crash before the checkpoint flush completes.
     We emulate by committing fully through the crashsim and then crashing
     with only the first flush applied: re-run commit steps manually is
     intrusive, so instead test the replay path by restoring a snapshot
     taken right after the journal flush.  Simpler: write journal records
     through a crashsim and crash after the *first* flush boundary. *)
  (* Commit issues: journal writes, flush, home writes, flush, jsb, flush.
     Crash the device after 1 flush by tracking flush count. *)
  (try
     let flush_budget = ref 1 in
     let dev' =
       {
         dev with
         Device.dev_flush =
           (fun () ->
             if !flush_budget = 0 then raise Exit;
             decr flush_budget;
             Device.flush dev);
       }
     in
     let j' = attach_exn dev' g in
     let txn' = Journal.begin_txn j' in
     Journal.txn_write txn' (data_blk g 0) (block_of_char 'a');
     Journal.txn_write txn' (data_blk g 1) (block_of_char 'b');
     Journal.commit j' txn'
   with Exit -> ());
  Crashsim.crash sim (* drop everything after the last flush *);
  ignore j;
  (* At this point the journal records are on the medium, the home writes
     are lost.  Replay must reconstruct them. *)
  (match Journal.replay raw g with
  | Ok n -> Alcotest.(check int) "one txn replayed" 1 n
  | Error msg -> Alcotest.failf "replay: %s" msg);
  Alcotest.(check bool) "home 0 recovered" true
    (Bytes.equal (Disk.read disk (data_blk g 0)) (block_of_char 'a'));
  Alcotest.(check bool) "home 1 recovered" true
    (Bytes.equal (Disk.read disk (data_blk g 1)) (block_of_char 'b'));
  (* Replay is idempotent and advances the tail. *)
  Alcotest.(check (result int string)) "second replay no-op" (Ok 0) (Journal.replay raw g)

(* Crash before the journal flush: transaction must vanish entirely. *)
let test_crash_before_journal_flush () =
  let nblocks = 512 and journal_len = 16 in
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let raw = Device.of_disk disk in
  let g = Result.get_ok (Layout.compute ~nblocks ~ninodes:64 ~journal_len ()) in
  Journal.format raw g;
  let sim, dev = Crashsim.create raw in
  (try
     let dev' = { dev with Device.dev_flush = (fun () -> raise Exit) } in
     let j = attach_exn dev' g in
     let txn = Journal.begin_txn j in
     Journal.txn_write txn (data_blk g 0) (block_of_char 'a');
     Journal.commit j txn
   with Exit -> ());
  Crashsim.crash sim;
  (match Journal.replay raw g with
  | Ok n -> Alcotest.(check int) "nothing replayed" 0 n
  | Error msg -> Alcotest.failf "replay: %s" msg);
  Alcotest.(check bool) "home untouched" true
    (Bytes.equal (Disk.read disk (data_blk g 0)) (block_of_char '\000'))

let test_escaping () =
  (* A data block that begins with the journal magic must roundtrip. *)
  let disk, dev, g = setup () in
  let j = attach_exn dev g in
  let tricky = Bytes.make bs '\000' in
  (* "JRNL" little-endian magic *)
  Bytes.set tricky 0 'J';
  Bytes.set tricky 1 'R';
  Bytes.set tricky 2 'N';
  Bytes.set tricky 3 'L';
  Bytes.set tricky 100 'x';
  let txn = Journal.begin_txn j in
  Journal.txn_write txn (data_blk g 0) tricky;
  Journal.commit j txn;
  Alcotest.(check int) "escape counted" 1 (Journal.stats j).Journal.escapes;
  Alcotest.(check bool) "home content exact" true (Bytes.equal (Disk.read disk (data_blk g 0)) tricky)

let test_escaping_survives_replay () =
  let nblocks = 512 and journal_len = 16 in
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let raw = Device.of_disk disk in
  let g = Result.get_ok (Layout.compute ~nblocks ~ninodes:64 ~journal_len ()) in
  Journal.format raw g;
  let sim, dev = Crashsim.create raw in
  let tricky = Bytes.make bs 'z' in
  Bytes.set tricky 0 'J'; Bytes.set tricky 1 'R'; Bytes.set tricky 2 'N'; Bytes.set tricky 3 'L';
  (try
     let flush_budget = ref 1 in
     let dev' =
       {
         dev with
         Device.dev_flush =
           (fun () ->
             if !flush_budget = 0 then raise Exit;
             decr flush_budget;
             Device.flush dev);
       }
     in
     let j = attach_exn dev' g in
     let txn = Journal.begin_txn j in
     Journal.txn_write txn (data_blk g 0) tricky;
     Journal.commit j txn
   with Exit -> ());
  Crashsim.crash sim;
  (match Journal.replay raw g with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 txn, replayed %d" n
  | Error msg -> Alcotest.failf "replay: %s" msg);
  Alcotest.(check bool) "escaped block restored with magic" true
    (Bytes.equal (Disk.read disk (data_blk g 0)) tricky)

let test_many_commits_wrap () =
  (* More transactions than the journal region holds: the tail reset must
     kick in and everything must stay consistent. *)
  let disk, dev, g = setup ~journal_len:8 () in
  let j = attach_exn dev g in
  for i = 0 to 19 do
    let txn = Journal.begin_txn j in
    Journal.txn_write txn (data_blk g (i mod 4)) (block_of_char (Char.chr (Char.code 'a' + (i mod 26))));
    Journal.commit j txn
  done;
  Alcotest.(check bool) "tail resets happened" true ((Journal.stats j).Journal.tail_resets > 0);
  Alcotest.(check bool) "last value present" true
    (Bytes.equal (Disk.read disk (data_blk g 3)) (block_of_char 't'));
  Alcotest.(check (result int string)) "clean replay" (Ok 0) (Journal.replay dev g)

let test_journal_full () =
  let _disk, dev, g = setup ~journal_len:4 () in
  let j = attach_exn dev g in
  let txn = Journal.begin_txn j in
  for i = 0 to 9 do
    Journal.txn_write txn (data_blk g i) (block_of_char 'x')
  done;
  match Journal.commit j txn with
  | exception Journal.Journal_full _ -> ()
  | () -> Alcotest.fail "expected Journal_full"

let test_revoke_suppresses_replay () =
  (* txn1 writes block B; txn2 revokes B (freed).  Crash with both in the
     journal and no checkpoint: replay must NOT restore txn1's image of B. *)
  let nblocks = 512 and journal_len = 32 in
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let raw = Device.of_disk disk in
  let g = Result.get_ok (Layout.compute ~nblocks ~ninodes:64 ~journal_len ()) in
  Journal.format raw g;
  let target = data_blk g 0 in
  (* Make the journal superblock writes vanish: the tail never advances on
     the medium, so after the "crash" both transactions sit in the replay
     window even though they were fully checkpointed in memory. *)
  let fault = Fault.create [ Fault.Stuck_write { block = g.Layout.journal_start } ] in
  let dev = Fault.wrap fault raw in
  let j = attach_exn dev g in
  let txn1 = Journal.begin_txn j in
  Journal.txn_write txn1 target (block_of_char 'O');
  Journal.commit j txn1;
  let txn2 = Journal.begin_txn j in
  Journal.txn_write txn2 (data_blk g 1) (block_of_char 'M');
  Journal.txn_revoke txn2 target;
  Journal.commit j txn2;
  (* Overwrite the target on the medium to simulate its reuse as data. *)
  Disk.write disk target (block_of_char 'D');
  (match Journal.replay raw g with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "replay: %s" msg);
  Alcotest.(check bool) "revoked block not replayed" true
    (Bytes.equal (Disk.read disk target) (block_of_char 'D'));
  Alcotest.(check bool) "non-revoked write replayed" true
    (Bytes.equal (Disk.read disk (data_blk g 1)) (block_of_char 'M'))

let prop_commit_replay_equivalence =
  (* Random write batches: committing through the journal and crashing
     after the journal flush then replaying yields the same medium as
     committing without a crash. *)
  QCheck2.Test.make ~name:"crash+replay == direct commit" ~count:50
    QCheck2.Gen.(list_size (int_range 1 8) (pair (int_bound 19) (int_bound 25)))
    (fun writes ->
      let run ~crash =
        let nblocks = 512 and journal_len = 32 in
        let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
        let raw = Device.of_disk disk in
        let g = Result.get_ok (Layout.compute ~nblocks ~ninodes:64 ~journal_len ()) in
        Journal.format raw g;
        let sim, dev = Crashsim.create raw in
        (try
           let flush_budget = ref (if crash then 1 else max_int) in
           let dev' =
             {
               dev with
               Device.dev_flush =
                 (fun () ->
                   if !flush_budget = 0 then raise Exit;
                   decr flush_budget;
                   Device.flush dev);
             }
           in
           let j = attach_exn dev' g in
           let txn = Journal.begin_txn j in
           List.iter
             (fun (blk, c) ->
               Journal.txn_write txn (data_blk g blk) (block_of_char (Char.chr (Char.code 'a' + c))))
             writes;
           Journal.commit j txn
         with Exit -> ());
        if crash then Crashsim.crash sim else Device.flush dev;
        if crash then ignore (Result.get_ok (Journal.replay raw g));
        (* Compare only the data region: journal tail state may differ. *)
        List.init 20 (fun i -> Disk.read disk (data_blk g i))
      in
      let direct = run ~crash:false and recovered = run ~crash:true in
      List.for_all2 Bytes.equal direct recovered)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_journal"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "format/attach" `Quick test_format_attach;
          Alcotest.test_case "attach unformatted" `Quick test_attach_unformatted;
        ] );
      ( "commit",
        [
          Alcotest.test_case "commit checkpoints" `Quick test_commit_checkpoints;
          Alcotest.test_case "empty commit no-op" `Quick test_empty_commit_noop;
          Alcotest.test_case "intra-txn supersede" `Quick test_txn_write_supersedes;
          Alcotest.test_case "overwrite keeps first-write order" `Quick
            test_txn_overwrite_keeps_first_write_order;
          Alcotest.test_case "revoke dedup" `Quick test_revoke_dedup;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
          Alcotest.test_case "journal full" `Quick test_journal_full;
          Alcotest.test_case "wraparound" `Quick test_many_commits_wrap;
          Alcotest.test_case "magic escaping" `Quick test_escaping;
        ] );
      ( "replay",
        [
          Alcotest.test_case "clean replay no-op" `Quick test_replay_clean_is_noop;
          Alcotest.test_case "crash after journal commit" `Quick test_crash_after_journal_commit;
          Alcotest.test_case "crash before journal flush" `Quick test_crash_before_journal_flush;
          Alcotest.test_case "escaping survives replay" `Quick test_escaping_survives_replay;
          Alcotest.test_case "revocation suppresses replay" `Quick test_revoke_suppresses_replay;
          q prop_commit_replay_equivalence;
        ] );
    ]
