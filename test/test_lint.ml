(* End-to-end tests for rae_lint: run the engine over the deliberately
   broken fixture library (test/lint_fixtures) and assert each rule
   fires at the expected file/line with the expected key, that the clean
   fixture stays clean, that the suppression baseline round-trips, and
   that the real tree under lib/ is lint-clean with an empty baseline. *)

open Rae_lint

(* The fixtures library plays the role of a read-path layer: it may see
   util/obs/vfs/block/format but not the journal, Bad_impure* units are
   purity roots, and Bad_swallow.Boom is the runtime-error signal. *)
let fixture_config =
  let d = Lintcfg.default in
  {
    d with
    Lintcfg.libraries =
      ("lint_fixtures", [ "util"; "obs"; "vfs"; "block"; "format" ]) :: d.Lintcfg.libraries;
    purity_roots = [ "Lint_fixtures.Bad_impure" ];
    signal_exceptions = [ "Lint_fixtures.Bad_swallow.Boom" ];
  }

(* Tests run from _build/default/test; fall back for manual runs from
   the repo root. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let run_fixtures ?baseline () =
  match Engine.run ~config:fixture_config ?baseline ~dirs:[ fixture_dir ] () with
  | Error msg -> Alcotest.failf "fixture scan failed: %s" msg
  | Ok r -> r

let in_file name (f : Finding.t) = Filename.basename f.Finding.file = name
let with_rule rule (f : Finding.t) = String.equal f.Finding.rule rule

let hits rule file (r : Engine.result) =
  List.filter (fun f -> with_rule rule f && in_file file f) r.Engine.kept

let lines_of fs = List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.Finding.line) fs)
let keys_of fs = List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.Finding.key) fs)

(* ---- shadow-purity ---- *)

let test_purity_direct () =
  let r = run_fixtures () in
  match hits "shadow-purity" "bad_impure.ml" r with
  | [ f ] ->
      Alcotest.(check string) "sink key" "Rae_block.Device.write" f.Finding.key;
      Alcotest.(check int) "at scribble's definition" 6 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one purity finding, got %d" (List.length fs)

let test_purity_transitive () =
  let r = run_fixtures () in
  match hits "shadow-purity" "bad_impure_indirect.ml" r with
  | [ f ] ->
      Alcotest.(check string) "sink key" "Rae_block.Device.write" f.Finding.key;
      Alcotest.(check int) "at sneaky's definition" 4 f.Finding.line;
      Alcotest.(check bool) "chain shows the hop through Bad_impure" true
        (let has s sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has f.Finding.message "sneaky" && has f.Finding.message "scribble")
  | fs -> Alcotest.failf "expected exactly one transitive finding, got %d" (List.length fs)

(* ---- no-swallow ---- *)

let test_swallow () =
  let r = run_fixtures () in
  let fs = hits "no-swallow" "bad_swallow.ml" r in
  Alcotest.(check (list int))
    "inline raise, call-reachable raise, match-exception" [ 9; 12; 15 ] (lines_of fs);
  Alcotest.(check (list string)) "all carry the signal key" [ "Lint_fixtures.Bad_swallow.Boom" ]
    (keys_of fs)

(* ---- layering ---- *)

let test_layering () =
  let r = run_fixtures () in
  match hits "layering" "bad_layering.ml" r with
  | [ f ] -> Alcotest.(check string) "forbidden library" "journal" f.Finding.key
  | fs -> Alcotest.failf "expected exactly one layering finding, got %d" (List.length fs)

(* ---- poly-compare ---- *)

let test_poly_compare () =
  let r = run_fixtures () in
  let fs = hits "poly-compare" "bad_poly_compare.ml" r in
  Alcotest.(check (list int)) "(=), compare, List.sort compare" [ 8; 10; 12 ] (lines_of fs);
  Alcotest.(check (list string)) "on-disk types named"
    [ "Rae_format.Dirent.entry"; "Rae_format.Inode.t"; "Rae_format.Superblock.t" ]
    (keys_of fs)

(* ---- partial-call ---- *)

let test_partial () =
  let r = run_fixtures () in
  let fs = hits "partial-call" "bad_partial.ml" r in
  Alcotest.(check (list int)) "hd, tl, nth, get, find" [ 4; 6; 8; 10; 12 ] (lines_of fs);
  Alcotest.(check (list string)) "partial functions named"
    [
      "Stdlib.Hashtbl.find"; "Stdlib.List.hd"; "Stdlib.List.nth"; "Stdlib.List.tl";
      "Stdlib.Option.get";
    ]
    (keys_of fs)

(* ---- negative fixture ---- *)

let test_clean_fixture () =
  let r = run_fixtures () in
  let fs = List.filter (in_file "clean_ok.ml") r.Engine.kept in
  Alcotest.(check int) "no rule fires on clean_ok.ml" 0 (List.length fs)

(* ---- suppression baseline ---- *)

let test_baseline_roundtrip () =
  let r = run_fixtures () in
  Alcotest.(check bool) "fixtures do produce findings" true (r.Engine.kept <> []);
  let entries, bad = Baseline.parse (Baseline.to_string (Baseline.of_findings r.Engine.kept)) in
  Alcotest.(check (list string)) "serialized baseline has no malformed lines" [] bad;
  let r' = run_fixtures ~baseline:entries () in
  Alcotest.(check int) "every finding suppressed" 0 (List.length r'.Engine.kept);
  Alcotest.(check int) "nothing hidden twice or lost" (List.length r.Engine.kept)
    (List.length r'.Engine.hidden);
  Alcotest.(check int) "no unused entries" 0 (List.length r'.Engine.unused);
  Alcotest.(check bool) "suppressed run gates green" false (Engine.has_errors r')

let test_baseline_unused_and_malformed () =
  let stale = { Baseline.e_rule = "no-swallow"; e_file = "gone.ml"; e_key = "X" } in
  let kept, suppressed, unused = Baseline.apply [ stale ] [] in
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "nothing suppressed" 0 (List.length suppressed);
  Alcotest.(check bool) "stale entry reported unused" true (unused = [ stale ]);
  let entries, bad = Baseline.parse "# comment\nrule only one field\n" in
  Alcotest.(check int) "malformed line rejected, not parsed" 0 (List.length entries);
  Alcotest.(check (list string)) "malformed line reported" [ "rule only one field" ] bad

(* ---- observability + JSON surface ---- *)

let test_stats_and_metrics () =
  let r = run_fixtures () in
  let s = r.Engine.stats in
  Alcotest.(check bool) "scanned some cmts" true (s.Engine.files_scanned > 0);
  Alcotest.(check int) "all five rules ran" 5 s.Engine.rules_run;
  Alcotest.(check int) "by_rule covers every rule" 5 (List.length s.Engine.by_rule);
  let registry = Rae_obs.Metrics.create () in
  Engine.register_obs registry s;
  let prom = Rae_obs.Metrics.to_prometheus registry in
  let has sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length prom && (String.sub prom i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "findings counter exported" true (has "rae_lint_findings");
  Alcotest.(check bool) "wall-time gauge exported" true (has "rae_lint_wall_seconds");
  Alcotest.(check bool) "per-rule counter exported" true (has "rae_lint_findings_shadow_purity");
  let json = Engine.to_json r in
  Alcotest.(check bool) "json has stats" true (String.length json > 2 && json.[0] = '{');
  Alcotest.(check bool) "json names findings" true
    (let n = String.length "\"findings\"" in
     let rec go i = i + n <= String.length json && (String.sub json i n = "\"findings\"" || go (i + 1)) in
     go 0)

(* ---- the real tree ---- *)

let test_repo_is_clean () =
  (* When run under `dune runtest` the lib cmts exist (the @lint rule
     builds them); when the test binary is run in isolation they may
     not — treat that as a skip, not a failure. *)
  match Engine.run ~dirs:[ Filename.concat ".." "lib" ] () with
  | Error _ -> ()
  | Ok r ->
      List.iter (fun f -> Printf.eprintf "unexpected: %s\n" (Finding.to_human f)) r.Engine.kept;
      Alcotest.(check int) "lib/ is lint-clean with an empty baseline" 0
        (List.length r.Engine.kept)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "shadow-purity direct" `Quick test_purity_direct;
          Alcotest.test_case "shadow-purity transitive" `Quick test_purity_transitive;
          Alcotest.test_case "no-swallow" `Quick test_swallow;
          Alcotest.test_case "layering" `Quick test_layering;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "partial-call" `Quick test_partial;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round-trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "unused + malformed" `Quick test_baseline_unused_and_malformed;
        ] );
      ( "surface",
        [
          Alcotest.test_case "stats, metrics, json" `Quick test_stats_and_metrics;
          Alcotest.test_case "repo self-scan" `Quick test_repo_is_clean;
        ] );
    ]
