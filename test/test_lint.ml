(* End-to-end tests for rae_lint: run the engine over the deliberately
   broken fixture library (test/lint_fixtures) and assert each rule
   fires at the expected file/line with the expected key, that the clean
   fixture stays clean, that the suppression baseline round-trips, and
   that the real tree under lib/ is lint-clean with an empty baseline. *)

open Rae_lint

(* The fixtures library plays the role of a read-path layer: it may see
   util/obs/vfs/block/format but not the journal, Bad_impure* units are
   purity roots, and Bad_swallow.Boom is the runtime-error signal.  The
   new rule families are aimed at their fixtures too: Bad_domain_escape
   hosts a parallel-region root and Bad_phase_order a phase marker
   following the real declared phase order. *)
let fixture_config =
  let d = Lintcfg.default in
  {
    d with
    Lintcfg.libraries =
      (* "par" is allowed because the journal's interface pulls the
         rae_par cmi into the fixture's import table. *)
      ("lint_fixtures", [ "util"; "obs"; "vfs"; "block"; "format"; "par" ]) :: d.Lintcfg.libraries;
    purity_roots = [ "Lint_fixtures.Bad_impure" ];
    signal_exceptions = [ "Lint_fixtures.Bad_swallow.Boom" ];
    domain_regions =
      ("fixture-fold", [ "Lint_fixtures.Bad_domain_escape.fold_entry" ]) :: d.Lintcfg.domain_regions;
    phase_protocols =
      ("Lint_fixtures.Bad_phase_order.phase", Lintcfg.default_phase_order) :: d.Lintcfg.phase_protocols;
  }

(* Tests run from _build/default/test; fall back for manual runs from
   the repo root. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let run_fixtures ?baseline () =
  match Engine.run ~config:fixture_config ?baseline ~dirs:[ fixture_dir ] () with
  | Error msg -> Alcotest.failf "fixture scan failed: %s" msg
  | Ok r -> r

let in_file name (f : Finding.t) = Filename.basename f.Finding.file = name
let with_rule rule (f : Finding.t) = String.equal f.Finding.rule rule

let hits rule file (r : Engine.result) =
  List.filter (fun f -> with_rule rule f && in_file file f) r.Engine.kept

let lines_of fs = List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.Finding.line) fs)
let keys_of fs = List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.Finding.key) fs)

(* ---- shadow-purity ---- *)

let test_purity_direct () =
  let r = run_fixtures () in
  match hits "shadow-purity" "bad_impure.ml" r with
  | [ f ] ->
      Alcotest.(check string) "sink key" "Rae_block.Device.write" f.Finding.key;
      Alcotest.(check int) "at scribble's definition" 6 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one purity finding, got %d" (List.length fs)

let test_purity_transitive () =
  let r = run_fixtures () in
  match hits "shadow-purity" "bad_impure_indirect.ml" r with
  | [ f ] ->
      Alcotest.(check string) "sink key" "Rae_block.Device.write" f.Finding.key;
      Alcotest.(check int) "at sneaky's definition" 4 f.Finding.line;
      Alcotest.(check bool) "chain shows the hop through Bad_impure" true
        (let has s sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has f.Finding.message "sneaky" && has f.Finding.message "scribble")
  | fs -> Alcotest.failf "expected exactly one transitive finding, got %d" (List.length fs)

(* ---- no-swallow ---- *)

let test_swallow () =
  let r = run_fixtures () in
  let fs = hits "no-swallow" "bad_swallow.ml" r in
  Alcotest.(check (list int))
    "inline raise, call-reachable raise, match-exception" [ 9; 12; 15 ] (lines_of fs);
  Alcotest.(check (list string)) "all carry the signal key" [ "Lint_fixtures.Bad_swallow.Boom" ]
    (keys_of fs)

(* ---- persist-order ---- *)

let test_persist_bypass () =
  let r = run_fixtures () in
  match hits "persist-order" "bad_journal_bypass.ml" r with
  | [ f ] ->
      Alcotest.(check string) "bypass key" "journal-bypass:Rae_block.Device.write" f.Finding.key;
      Alcotest.(check int) "at the raw write" 5 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one bypass finding, got %d" (List.length fs)

let test_persist_destage_order () =
  let r = run_fixtures () in
  let fs = hits "persist-order" "bad_destage_order.ml" r in
  Alcotest.(check (list string))
    "destage and barrier reorder both flagged"
    [ "destage-before-commit:Rae_block.Device.write"; "flush-before-commit:Rae_block.Device.flush" ]
    (keys_of fs);
  Alcotest.(check (list int)) "at the write and the flush" [ 10; 11 ] (lines_of fs)

(* ---- domain-safety ---- *)

let test_domain_escape () =
  let r = run_fixtures () in
  match hits "domain-safety" "bad_domain_escape.ml" r with
  | [ f ] ->
      Alcotest.(check string) "region:cell key"
        "fixture-fold:Lint_fixtures.Bad_domain_escape.shared_hits" f.Finding.key;
      Alcotest.(check int) "at the unguarded write" 6 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one domain-safety finding, got %d" (List.length fs)

let test_domain_report () =
  let r = run_fixtures () in
  let json = Rae_obs.Jsonx.to_string (Domsafety.to_json r.Engine.domain) in
  let parsed = Rae_obs.Jsonx.parse_exn json in
  let regions =
    match Rae_obs.Jsonx.(Option.bind (member "regions" parsed) to_list_opt) with
    | Some l -> l
    | None -> Alcotest.fail "domain report has no regions list"
  in
  (* The fixture region is present, and its one cell is classified as a
     finding (the machine-readable face of test_domain_escape). *)
  let fixture =
    List.find_opt
      (fun reg -> Rae_obs.Jsonx.(Option.bind (member "region" reg) to_str_opt) = Some "fixture-fold")
      regions
  in
  match fixture with
  | None -> Alcotest.fail "fixture-fold region missing from the report"
  | Some reg -> (
      match Rae_obs.Jsonx.(Option.bind (member "cells" reg) to_list_opt) with
      | Some [ cell ] ->
          Alcotest.(check (option string))
            "cell named" (Some "Lint_fixtures.Bad_domain_escape.shared_hits")
            Rae_obs.Jsonx.(Option.bind (member "cell" cell) to_str_opt);
          Alcotest.(check (option string))
            "classified as a finding" (Some "finding")
            Rae_obs.Jsonx.(Option.bind (member "class" cell) to_str_opt)
      | _ -> Alcotest.fail "expected exactly one catalogued cell in fixture-fold")

(* ---- phase-order ---- *)

let test_phase_order () =
  let r = run_fixtures () in
  let fs = hits "phase-order" "bad_phase_order.ml" r in
  Alcotest.(check (list string))
    "out-of-order phase and unknown phase"
    [ "phase-order:shadow-attach"; "unknown-phase:warp-core" ]
    (keys_of fs);
  Alcotest.(check (list int)) "at the offending marker calls" [ 11; 12 ] (lines_of fs)

(* The lint config declares the phase order as data (the lint library
   must not depend on rae_core); this pins it to the controller's
   actual phase_names so they cannot drift apart. *)
let test_phase_order_matches_controller () =
  Alcotest.(check (list string))
    "Lintcfg.default_phase_order = Controller.phase_names" Rae_core.Controller.phase_names
    Lintcfg.default_phase_order

(* ---- layering ---- *)

let test_layering () =
  let r = run_fixtures () in
  match hits "layering" "bad_layering.ml" r with
  | [ f ] -> Alcotest.(check string) "forbidden library" "journal" f.Finding.key
  | fs -> Alcotest.failf "expected exactly one layering finding, got %d" (List.length fs)

(* ---- poly-compare ---- *)

let test_poly_compare () =
  let r = run_fixtures () in
  let fs = hits "poly-compare" "bad_poly_compare.ml" r in
  Alcotest.(check (list int)) "(=), compare, List.sort compare" [ 8; 10; 12 ] (lines_of fs);
  Alcotest.(check (list string)) "on-disk types named"
    [ "Rae_format.Dirent.entry"; "Rae_format.Inode.t"; "Rae_format.Superblock.t" ]
    (keys_of fs)

(* ---- partial-call ---- *)

let test_partial () =
  let r = run_fixtures () in
  let fs = hits "partial-call" "bad_partial.ml" r in
  Alcotest.(check (list int)) "hd, tl, nth, get, find" [ 4; 6; 8; 10; 12 ] (lines_of fs);
  Alcotest.(check (list string)) "partial functions named"
    [
      "Stdlib.Hashtbl.find"; "Stdlib.List.hd"; "Stdlib.List.nth"; "Stdlib.List.tl";
      "Stdlib.Option.get";
    ]
    (keys_of fs)

(* ---- negative fixture ---- *)

let test_clean_fixture () =
  let r = run_fixtures () in
  let fs = List.filter (in_file "clean_ok.ml") r.Engine.kept in
  Alcotest.(check int) "no rule fires on clean_ok.ml" 0 (List.length fs)

(* ---- suppression baseline ---- *)

let test_baseline_roundtrip () =
  let r = run_fixtures () in
  Alcotest.(check bool) "fixtures do produce findings" true (r.Engine.kept <> []);
  let entries, bad = Baseline.parse (Baseline.to_string (Baseline.of_findings r.Engine.kept)) in
  Alcotest.(check (list string)) "serialized baseline has no malformed lines" [] bad;
  let r' = run_fixtures ~baseline:entries () in
  Alcotest.(check int) "every finding suppressed" 0 (List.length r'.Engine.kept);
  Alcotest.(check int) "nothing hidden twice or lost" (List.length r.Engine.kept)
    (List.length r'.Engine.hidden);
  Alcotest.(check int) "no unused entries" 0 (List.length r'.Engine.unused);
  Alcotest.(check bool) "suppressed run gates green" false (Engine.has_errors r')

let test_baseline_unused_and_malformed () =
  let stale = { Baseline.e_rule = "no-swallow"; e_file = "gone.ml"; e_key = "X" } in
  let kept, suppressed, unused = Baseline.apply [ stale ] [] in
  Alcotest.(check int) "nothing kept" 0 (List.length kept);
  Alcotest.(check int) "nothing suppressed" 0 (List.length suppressed);
  Alcotest.(check bool) "stale entry reported unused" true (unused = [ stale ]);
  let entries, bad = Baseline.parse "# comment\nrule only one field\n" in
  Alcotest.(check int) "malformed line rejected, not parsed" 0 (List.length entries);
  Alcotest.(check (list string)) "malformed line reported" [ "rule only one field" ] bad

(* ---- observability + JSON surface ---- *)

let test_stats_and_metrics () =
  let r = run_fixtures () in
  let s = r.Engine.stats in
  Alcotest.(check bool) "scanned some cmts" true (s.Engine.files_scanned > 0);
  Alcotest.(check int) "all eight rules ran" 8 s.Engine.rules_run;
  Alcotest.(check int) "by_rule covers every rule" 8 (List.length s.Engine.by_rule);
  let registry = Rae_obs.Metrics.create () in
  Engine.register_obs registry s;
  let prom = Rae_obs.Metrics.to_prometheus registry in
  let has sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length prom && (String.sub prom i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "findings counter exported" true (has "rae_lint_findings");
  Alcotest.(check bool) "wall-time gauge exported" true (has "rae_lint_wall_seconds");
  Alcotest.(check bool) "per-rule counter exported" true (has "rae_lint_findings_shadow_purity");
  let json = Engine.to_json r in
  Alcotest.(check bool) "json has stats" true (String.length json > 2 && json.[0] = '{');
  Alcotest.(check bool) "json names findings" true
    (let n = String.length "\"findings\"" in
     let rec go i = i + n <= String.length json && (String.sub json i n = "\"findings\"" || go (i + 1)) in
     go 0)

(* ---- the real tree ---- *)

let test_repo_is_clean () =
  (* When run under `dune runtest` the lib cmts exist (the @lint rule
     builds them); when the test binary is run in isolation they may
     not — treat that as a skip, not a failure. *)
  match Engine.run ~dirs:[ Filename.concat ".." "lib" ] () with
  | Error _ -> ()
  | Ok r ->
      List.iter (fun f -> Printf.eprintf "unexpected: %s\n" (Finding.to_human f)) r.Engine.kept;
      Alcotest.(check int) "lib/ is lint-clean with an empty baseline" 0
        (List.length r.Engine.kept)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "shadow-purity direct" `Quick test_purity_direct;
          Alcotest.test_case "shadow-purity transitive" `Quick test_purity_transitive;
          Alcotest.test_case "no-swallow" `Quick test_swallow;
          Alcotest.test_case "persist-order journal bypass" `Quick test_persist_bypass;
          Alcotest.test_case "persist-order destage/flush reorder" `Quick test_persist_destage_order;
          Alcotest.test_case "domain-safety escape" `Quick test_domain_escape;
          Alcotest.test_case "domain-safety report" `Quick test_domain_report;
          Alcotest.test_case "phase-order" `Quick test_phase_order;
          Alcotest.test_case "phase order pinned to controller" `Quick
            test_phase_order_matches_controller;
          Alcotest.test_case "layering" `Quick test_layering;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "partial-call" `Quick test_partial;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round-trip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "unused + malformed" `Quick test_baseline_unused_and_malformed;
        ] );
      ( "surface",
        [
          Alcotest.test_case "stats, metrics, json" `Quick test_stats_and_metrics;
          Alcotest.test_case "repo self-scan" `Quick test_repo_is_clean;
        ] );
    ]
