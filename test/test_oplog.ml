(* Unit tests for the RAE oplog and report modules. *)

open Rae_vfs
module Oplog = Rae_core.Oplog
module Report = Rae_core.Report

let p = Path.parse_exn

let test_record_and_entries () =
  let log = Oplog.create () in
  Alcotest.(check int) "empty" 0 (Oplog.length log);
  Oplog.record log (Op.Create (p "/a", 0o644)) (Ok (Op.Ino 2));
  Oplog.record log (Op.Unlink (p "/b")) (Error Errno.ENOENT);
  Alcotest.(check int) "two entries" 2 (Oplog.length log);
  match Oplog.entries log with
  | [ e1; e2 ] ->
      Alcotest.(check int) "seq 0" 0 e1.Op.seq;
      Alcotest.(check int) "seq 1" 1 e2.Op.seq;
      Alcotest.(check bool) "order oldest-first" true (Op.kind e1.Op.op = Op.K_create);
      Alcotest.(check bool) "outcome kept" true (e2.Op.outcome = Error Errno.ENOENT)
  | other -> Alcotest.failf "expected 2 entries, got %d" (List.length other)

let test_checkpoint_discards_and_snapshots () =
  let log = Oplog.create () in
  Oplog.record log Op.Sync (Ok Op.Unit);
  Oplog.record log Op.Sync (Ok Op.Unit);
  let fds = [ (0, 5, Types.flags_rw); (3, 7, Types.flags_ro) ] in
  Oplog.checkpoint log ~fds;
  Alcotest.(check int) "window cleared" 0 (Oplog.length log);
  Alcotest.(check bool) "fd snapshot stored" true (Oplog.fd_snapshot log = fds);
  Alcotest.(check int) "discard counter" 2 (Oplog.total_discarded log);
  Alcotest.(check int) "total recorded monotonic" 2 (Oplog.total_recorded log)

let test_seq_monotonic_across_checkpoints () =
  let log = Oplog.create () in
  Oplog.record log Op.Sync (Ok Op.Unit);
  Oplog.checkpoint log ~fds:[];
  Oplog.record log Op.Sync (Ok Op.Unit);
  match Oplog.entries log with
  | [ e ] -> Alcotest.(check int) "seq continues" 1 e.Op.seq
  | _ -> Alcotest.fail "expected one entry"

let test_max_window_highwater () =
  let log = Oplog.create () in
  for _ = 1 to 5 do
    Oplog.record log Op.Sync (Ok Op.Unit)
  done;
  Oplog.checkpoint log ~fds:[];
  for _ = 1 to 3 do
    Oplog.record log Op.Sync (Ok Op.Unit)
  done;
  Alcotest.(check int) "high water is 5" 5 (Oplog.max_window log)

let test_entries_from_suffix () =
  let log = Oplog.create () in
  for _ = 1 to 4 do
    Oplog.record log Op.Sync (Ok Op.Unit)
  done;
  Alcotest.(check int) "next_seq counts records" 4 (Oplog.next_seq log);
  (* A mid-window cursor returns exactly the suffix. *)
  (match Oplog.entries_from log ~seq:2 with
  | [ e1; e2 ] ->
      Alcotest.(check int) "suffix starts at cursor" 2 e1.Op.seq;
      Alcotest.(check int) "suffix ends at newest" 3 e2.Op.seq
  | other -> Alcotest.failf "expected 2 entries, got %d" (List.length other));
  (* A cursor at next_seq means nothing to replay. *)
  Alcotest.(check int) "empty delta" 0 (List.length (Oplog.entries_from log ~seq:4));
  (* A cursor older than the window start clamps to the whole window. *)
  Alcotest.(check int) "clamped to window" 4 (List.length (Oplog.entries_from log ~seq:(-3)));
  Alcotest.(check bool) "whole window = entries" true
    (Oplog.entries_from log ~seq:0 = Oplog.entries log)

let test_entries_from_across_checkpoints () =
  let log = Oplog.create () in
  for _ = 1 to 3 do
    Oplog.record log Op.Sync (Ok Op.Unit)
  done;
  Oplog.checkpoint log ~fds:[];
  Alcotest.(check int) "next_seq survives pruning" 3 (Oplog.next_seq log);
  for _ = 1 to 2 do
    Oplog.record log Op.Sync (Ok Op.Unit)
  done;
  Alcotest.(check int) "next_seq keeps counting" 5 (Oplog.next_seq log);
  (* Sequences older than the pruned window clamp to what still exists. *)
  (match Oplog.entries_from log ~seq:1 with
  | [ e1; e2 ] ->
      Alcotest.(check int) "first surviving entry" 3 e1.Op.seq;
      Alcotest.(check int) "newest entry" 4 e2.Op.seq
  | other -> Alcotest.failf "expected 2 entries, got %d" (List.length other));
  (match Oplog.entries_from log ~seq:4 with
  | [ e ] -> Alcotest.(check int) "one-op delta" 4 e.Op.seq
  | other -> Alcotest.failf "expected 1 entry, got %d" (List.length other))

let test_report_rendering () =
  let d =
    {
      Report.d_seq = 4;
      d_op = Op.Stat (p "/f");
      d_base = Ok (Op.Len 1);
      d_shadow = Ok (Op.Len 2);
    }
  in
  let r =
    {
      Report.r_trigger = Report.Panic { bug = "b"; msg = "m" };
      r_window = 10;
      r_replayed = 8;
      r_skipped = 2;
      r_discrepancies = [ d ];
      r_handoff_blocks = 3;
      r_delegated_sync = true;
      r_seeded = true;
      r_wall_seconds = 0.012;
      r_phases = [ { Report.ph_name = "contained-reboot"; ph_ns = 1_500_000L } ];
      r_outcome = Report.Recovered;
    }
  in
  let s = Format.asprintf "%a" Report.pp_recovery r in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions trigger" true (contains "panic(b)");
  Alcotest.(check bool) "mentions window" true (contains "window=10");
  Alcotest.(check bool) "mentions delegation" true (contains "delegated");
  Alcotest.(check bool) "mentions seeding" true (contains "(seeded)");
  Alcotest.(check bool) "mentions discrepancy" true (contains "discrepancy");
  Alcotest.(check bool) "mentions phase" true (contains "contained-reboot");
  List.iter
    (fun trigger ->
      Alcotest.(check bool) "trigger_to_string nonempty" true
        (String.length (Report.trigger_to_string trigger) > 0))
    [
      Report.Panic { bug = "x"; msg = "" };
      Report.Hang_detected { bug = "x"; msg = "" };
      Report.Validation { context = "c"; msg = "" };
      Report.Warning_storm { bug = "x"; msg = "" };
    ]

let () =
  Alcotest.run "rae_oplog"
    [
      ( "oplog",
        [
          Alcotest.test_case "record/entries" `Quick test_record_and_entries;
          Alcotest.test_case "checkpoint" `Quick test_checkpoint_discards_and_snapshots;
          Alcotest.test_case "seq monotonic" `Quick test_seq_monotonic_across_checkpoints;
          Alcotest.test_case "max window" `Quick test_max_window_highwater;
          Alcotest.test_case "entries_from suffix" `Quick test_entries_from_suffix;
          Alcotest.test_case "entries_from across checkpoints" `Quick
            test_entries_from_across_checkpoints;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
    ]
