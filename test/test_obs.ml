(* Unit and property tests for rae_obs: histogram quantiles, the metrics
   registry, span nesting, Chrome-trace export/validation, and the whole
   stack producing phase-timed recovery reports. *)

open Rae_vfs
module Metrics = Rae_obs.Metrics
module Tracer = Rae_obs.Tracer
module Events = Rae_obs.Events
module Blackbox = Rae_obs.Blackbox
module Jsonx = Rae_obs.Jsonx
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Report = Rae_core.Report

let p = Path.parse_exn

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* A fresh directory path for bundle-emission tests; Blackbox.write
   creates it on first use. *)
let tmpdir () =
  let path = Filename.temp_file "rae-test-bundles" "" in
  Sys.remove path;
  path

(* ---- histograms ---- *)

let samples_gen = QCheck2.Gen.(list_size (int_range 1 400) (int_range 0 1_000_000))

let prop_counts_conserved =
  QCheck2.Test.make ~name:"histogram conserves sample count" ~count:200 samples_gen (fun xs ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      Metrics.h_count h = List.length xs)

let prop_quantiles_ordered =
  QCheck2.Test.make ~name:"p50 <= p90 <= p99 <= max" ~count:200 samples_gen (fun xs ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      let q50 = Metrics.quantile h 0.5
      and q90 = Metrics.quantile h 0.9
      and q99 = Metrics.quantile h 0.99 in
      q50 <= q90 && q90 <= q99 && Metrics.quantile h 0.0 <= q50)

let prop_quantile_monotone_in_q =
  QCheck2.Test.make ~name:"quantile monotone in q" ~count:200
    QCheck2.Gen.(pair samples_gen (list_size (int_range 2 20) (float_range 0. 1.)))
    (fun (xs, qs) ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      let qs = List.sort compare qs in
      let vs = List.map (Metrics.quantile h) qs in
      let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
      mono vs)

let prop_quantile_bracketed =
  QCheck2.Test.make ~name:"quantile stays within [min-bucket, 2*max]" ~count:200 samples_gen
    (fun xs ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      let q = Metrics.quantile h 0.99 in
      q >= 0. && q <= Float.max 2. (2. *. Metrics.h_max h))

let test_histogram_basics () =
  let h = Metrics.histogram () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Metrics.quantile h 0.5);
  Metrics.observe h 100L;
  Metrics.observe h (-5L) (* clamped to 0 *);
  Alcotest.(check int) "count" 2 (Metrics.h_count h);
  Alcotest.(check (float 0.)) "sum counts clamped negative as 0" 100. (Metrics.h_sum h);
  Alcotest.(check (float 0.)) "max" 100. (Metrics.h_max h);
  Metrics.h_reset h;
  Alcotest.(check int) "reset count" 0 (Metrics.h_count h);
  Alcotest.(check (float 0.)) "reset max" 0. (Metrics.h_max h)

(* ---- registry ---- *)

let test_registry_snapshot_reset () =
  let reg = Metrics.create () in
  let n = ref 7 in
  Metrics.register_counter reg ~help:"test" ~reset:(fun () -> n := 0) "acme_ops" (fun () -> !n);
  Metrics.register_gauge reg "acme_depth" (fun () -> 2.5);
  let h = Metrics.histogram () in
  Metrics.observe h 1000L;
  Metrics.register_histogram reg "acme_lat" h;
  (match Metrics.find reg "acme_ops" with
  | Some (Metrics.Counter 7) -> ()
  | _ -> Alcotest.fail "counter sample");
  Alcotest.(check (list string)) "names sorted"
    [ "acme_depth"; "acme_lat"; "acme_ops" ]
    (Metrics.names reg);
  Alcotest.(check int) "snapshot size" 3 (List.length (Metrics.snapshot reg));
  (* Re-registering a name replaces the metric. *)
  Metrics.register_gauge reg "acme_depth" (fun () -> 9.);
  (match Metrics.find reg "acme_depth" with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 0.)) "replaced" 9. g
  | _ -> Alcotest.fail "gauge sample");
  Metrics.reset reg;
  (match Metrics.find reg "acme_ops" with
  | Some (Metrics.Counter 0) -> ()
  | _ -> Alcotest.fail "reset hook ran");
  match Metrics.find reg "acme_lat" with
  | Some (Metrics.Histo { count = 0; _ }) -> ()
  | _ -> Alcotest.fail "histogram cleared by registry reset"

let test_prometheus_export () =
  let reg = Metrics.create () in
  Metrics.register_counter reg ~help:"ops so far" "x_total" (fun () -> 3);
  let h = Metrics.histogram () in
  Metrics.observe h 512L;
  Metrics.register_histogram reg "lat.ns" h;
  let text = Metrics.to_prometheus reg in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (contains "x_total 3");
  Alcotest.(check bool) "TYPE line" true (contains "# TYPE x_total counter");
  Alcotest.(check bool) "HELP line" true (contains "# HELP x_total ops so far");
  Alcotest.(check bool) "name sanitised" true (contains "lat_ns");
  Alcotest.(check bool) "summary count" true (contains "lat_ns_count 1");
  Alcotest.(check bool) "quantile label" true (contains "{quantile=\"0.5\"}")

(* ---- span nesting ---- *)

(* Random begin/end sequences, with enable/disable toggles thrown in: the
   recorded event stream must stay balanced regardless. *)
let prop_span_nesting =
  QCheck2.Test.make ~name:"random begin/end/toggle keeps trace balanced" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 3))
    (fun actions ->
      let t = Tracer.create () in
      Tracer.enable t;
      List.iter
        (fun a ->
          match a with
          | 0 -> Tracer.span_begin t "s"
          | 1 -> Tracer.span_end t
          | 2 -> Tracer.instant t "i"
          | _ -> if Tracer.enabled t then Tracer.disable t else Tracer.enable t)
        actions;
      Tracer.depth t >= 0
      &&
      match Tracer.validate_chrome (Tracer.to_chrome t) with Ok _ -> true | Error _ -> false)

let test_span_basics () =
  let now = ref 0L in
  let t = Tracer.create ~clock:(fun () -> !now) () in
  Tracer.enable t;
  Tracer.span_begin t "outer";
  now := 10L;
  Tracer.span_begin t ~cat:"x" "inner";
  now := 20L;
  Alcotest.(check int) "depth" 2 (Tracer.depth t);
  Tracer.span_end t;
  Tracer.span_end t;
  Tracer.span_end t (* unbalanced end: no-op *);
  Alcotest.(check int) "depth back to 0" 0 (Tracer.depth t);
  match Tracer.events t with
  | [ Tracer.Begin { name = "outer"; _ }; Tracer.Begin { name = "inner"; cat = "x"; _ };
      Tracer.End { name = "inner"; _ }; Tracer.End { name = "outer"; _ } ] ->
      ()
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_disabled_tracer_records_nothing () =
  let t = Tracer.create () in
  Tracer.span_begin t "quiet";
  Tracer.instant t "never";
  Tracer.span_end t;
  Alcotest.(check int) "no events" 0 (List.length (Tracer.events t));
  (* A span opened while disabled must not emit a dangling E once enabled. *)
  Tracer.span_begin t "pre";
  Tracer.enable t;
  Tracer.span_end t;
  Alcotest.(check int) "still no events" 0 (List.length (Tracer.events t))

let test_monotone_clamp () =
  let now = ref 100L in
  let t = Tracer.create ~clock:(fun () -> !now) () in
  Tracer.enable t;
  Tracer.instant t "a";
  now := 50L (* clock goes backwards *);
  Tracer.instant t "b";
  match Tracer.events t with
  | [ Tracer.Instant { ts = a; _ }; Tracer.Instant { ts = b; _ } ] ->
      Alcotest.(check bool) "clamped monotone" true (Int64.compare b a >= 0)
  | _ -> Alcotest.fail "expected two instants"

(* ---- Chrome trace round-trip ---- *)

let test_chrome_roundtrip () =
  let now = ref 0L in
  let t = Tracer.create ~clock:(fun () -> !now) () in
  Tracer.enable t;
  Tracer.instant t "start";
  Tracer.span_begin t "a";
  now := 1500L;
  Tracer.span_begin t "b \"quoted\"";
  now := 2000L;
  Tracer.span_end t;
  Tracer.span_end t;
  let s = Tracer.to_chrome t in
  (match Tracer.validate_chrome s with
  | Ok n -> Alcotest.(check int) "event count" 5 n
  | Error msg -> Alcotest.failf "expected valid trace: %s" msg);
  match Tracer.parse_chrome s with
  | Ok evs ->
      Alcotest.(check int) "parsed all" 5 (List.length evs);
      let names = List.map (fun e -> e.Tracer.ev_name) evs in
      Alcotest.(check bool) "escaped name round-trips" true (List.mem "b \"quoted\"" names)
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_chrome_open_spans_closed_at_export () =
  let t = Tracer.create () in
  Tracer.enable t;
  Tracer.span_begin t "left-open";
  match Tracer.validate_chrome (Tracer.to_chrome t) with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected synthetic close (2 events), got %d" n
  | Error msg -> Alcotest.failf "expected valid trace: %s" msg

let test_chrome_rejects_malformed () =
  let bad input =
    match Tracer.validate_chrome input with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "garbage" true (bad "hello\nworld");
  (* Unbalanced: an E with no matching B. *)
  let unbalanced =
    "{\"traceEvents\":[\n{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"E\",\"ts\":1.0,\"pid\":1,\"tid\":1}\n\
     ],\"displayTimeUnit\":\"ms\"}\n"
  in
  Alcotest.(check bool) "unbalanced" true (bad unbalanced);
  (* Non-monotone timestamps. *)
  let backwards =
    "{\"traceEvents\":[\n\
     {\"name\":\"x\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":5.0,\"pid\":1,\"tid\":1},\n\
     {\"name\":\"x\",\"cat\":\"c\",\"ph\":\"E\",\"ts\":1.0,\"pid\":1,\"tid\":1}\n\
     ],\"displayTimeUnit\":\"ms\"}\n"
  in
  Alcotest.(check bool) "non-monotone" true (bad backwards)

(* ---- the full stack: recovery emits spans and phase timings ---- *)

let armed_panic () =
  Bug_registry.arm
    [
      {
        Bug_registry.id = "test-panic";
        determinism = Bug_registry.Deterministic;
        trigger = Bug_registry.Path_component "boom";
        consequence = Bug_registry.Panic;
        modeled_after = "test";
      };
    ]

let mk_stack ?bundle_dir () =
  let disk =
    Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency
      ~block_size:Rae_format.Layout.block_size ~nblocks:4096 ()
  in
  let dev = Rae_block.Device.of_disk disk in
  Result.get_ok (Base.mkfs dev ~ninodes:256 ());
  let base = Result.get_ok (Base.mount ~bugs:(armed_panic ()) dev) in
  let tracer = Tracer.create () in
  Tracer.enable tracer;
  let events = Events.create ~capacity:256 () in
  let ctl = Controller.make ~tracer ~events ?bundle_dir ~run_id:"test-obs" ~device:dev base in
  (ctl, tracer, events)

let test_recovery_phases_and_spans () =
  let ctl, tracer, _ = mk_stack () in
  ignore (Controller.create ctl (p "/a") ~mode:0o644);
  ignore (Controller.mkdir ctl (p "/d") ~mode:0o755);
  ignore (Controller.create ctl (p "/boom") ~mode:0o644);
  let r =
    match Controller.last_recovery ctl with
    | Some r -> r
    | None -> Alcotest.fail "expected a recovery"
  in
  Alcotest.(check bool) "recovered" true (r.Report.r_outcome = Report.Recovered);
  let phase_names = List.map (fun ph -> ph.Report.ph_name) r.Report.r_phases in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " timed") true (List.mem expected phase_names))
    [
      "contained-reboot"; "shadow-attach"; "fd-reinstate"; "constrained-replay";
      "inflight-autonomous"; "metadata-download"; "resume";
    ];
  List.iter
    (fun ph ->
      Alcotest.(check bool) (ph.Report.ph_name ^ " non-negative") true (ph.Report.ph_ns >= 0L))
    r.Report.r_phases;
  (* The rendered report mentions the phases. *)
  let s = Format.asprintf "%a" Report.pp_recovery r in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report prints phases" true (contains "constrained-replay");
  (* And the trace exports balanced with the recovery span present. *)
  (match Tracer.validate_chrome (Tracer.to_chrome tracer) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "trace invalid after recovery: %s" msg);
  Alcotest.(check bool) "recovery span" true
    (List.exists
       (function Tracer.Begin { name = "recovery"; _ } -> true | _ -> false)
       (Tracer.events tracer))

let test_register_obs_and_reset () =
  let ctl, _, _ = mk_stack () in
  let reg = Metrics.create () in
  Controller.register_obs reg ctl;
  ignore (Controller.create ctl (p "/a") ~mode:0o644);
  ignore (Controller.create ctl (p "/boom") ~mode:0o644);
  (match Metrics.find reg "rae_recoveries_total" with
  | Some (Metrics.Counter 1) -> ()
  | Some (Metrics.Counter n) -> Alcotest.failf "expected 1 recovery, sampled %d" n
  | _ -> Alcotest.fail "rae_recoveries_total missing");
  (match Metrics.find reg "rae_recovery_ns" with
  | Some (Metrics.Histo { count = 1; _ }) -> ()
  | _ -> Alcotest.fail "recovery latency histogram not fed");
  (match Metrics.find reg "base_ops_total" with
  | Some (Metrics.Counter n) when n > 0 -> ()
  | _ -> Alcotest.fail "base metrics not registered");
  (* Controller.reset_stats zeroes counters but keeps the recovery log. *)
  Controller.reset_stats ctl;
  let s = Controller.stats ctl in
  Alcotest.(check int) "ops reset" 0 s.Controller.ops;
  Alcotest.(check int) "recoveries reset" 0 s.Controller.recoveries;
  Alcotest.(check int) "recorded reset" 0 s.Controller.total_recorded;
  Alcotest.(check int) "log kept" 1 (List.length (Controller.recoveries ctl));
  (* Metrics.reset drives the same hooks through the registry. *)
  ignore (Controller.create ctl (p "/b") ~mode:0o644);
  Metrics.reset reg;
  match Metrics.find reg "rae_ops_total" with
  | Some (Metrics.Counter 0) -> ()
  | _ -> Alcotest.fail "registry reset did not zero controller counters"

(* ---- flight recorder ---- *)

let test_recorder_wraparound () =
  let now = ref 0 in
  let ev = Events.create ~capacity:3 (* rounds up to 4 *) ~clock:(fun () -> !now) () in
  Alcotest.(check int) "power-of-two capacity" 4 (Events.capacity ev);
  for i = 0 to 9 do
    now := i * 10;
    Events.record_op ev ~kind:"create" ~errno:"" ~lat_ns:i ~corr:i ~session:1
  done;
  Alcotest.(check int) "total" 10 (Events.total ev);
  Alcotest.(check int) "retained" 4 (Events.retained ev);
  Alcotest.(check int) "dropped" 6 (Events.dropped ev);
  let tail = Events.tail ev in
  Alcotest.(check (list int)) "oldest-first survivors" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Events.seq) tail);
  (match List.rev tail with
  | { Events.ts_ns = 90; body = Events.Op_done { corr = 9; lat_ns = 9; _ }; _ } :: _ -> ()
  | _ -> Alcotest.fail "newest slot holds the last record's payload");
  Alcotest.(check int) "n above retained clamps" 4 (List.length (Events.tail ~n:100 ev));
  Alcotest.(check (list int)) "n takes the newest" [ 8; 9 ]
    (List.map (fun e -> e.Events.seq) (Events.tail ~n:2 ev));
  Events.clear ev;
  Alcotest.(check int) "clear empties" 0 (Events.retained ev)

let test_recorder_json () =
  let ev = Events.create ~capacity:8 ~clock:(fun () -> 42) () in
  Events.record_op ev ~kind:"mkdir" ~errno:"ENOSPC" ~lat_ns:7 ~corr:3 ~session:2;
  Events.record_bug_fired ev ~id:"b-1";
  Events.record_session ev `Attach ~session:5;
  let s = Jsonx.to_string (Events.to_json ev) in
  match Jsonx.parse s with
  | Error m -> Alcotest.failf "recorder json does not reparse: %s" m
  | Ok (Jsonx.List [ op; bug; sess ]) ->
      let str k j =
        match Option.bind (Jsonx.member k j) Jsonx.to_str_opt with Some s -> s | None -> "?"
      in
      Alcotest.(check string) "op kind" "op" (str "kind" op);
      Alcotest.(check string) "op errno" "ENOSPC" (str "errno" op);
      Alcotest.(check (option int)) "op corr" (Some 3)
        (Option.bind (Jsonx.member "corr" op) Jsonx.to_int_opt);
      Alcotest.(check string) "bug kind" "bug-fired" (str "kind" bug);
      Alcotest.(check string) "bug id" "b-1" (str "bug" bug);
      Alcotest.(check string) "session kind" "session-attach" (str "kind" sess)
  | Ok _ -> Alcotest.fail "expected a three-event list"

let test_record_during_recovery () =
  let ctl, _, ev = mk_stack () in
  ignore (Controller.create ctl (p "/a") ~mode:0o644);
  ignore (Controller.create ctl (p "/boom") ~mode:0o644);
  Alcotest.(check bool) "healthy after recovery" true (Controller.health ctl = Events.Healthy);
  let bodies = List.map (fun e -> e.Events.body) (Events.tail ev) in
  let has f = List.exists f bodies in
  Alcotest.(check bool) "bug trigger recorded" true
    (has (function Events.Bug_fired { id = "test-panic" } -> true | _ -> false));
  Alcotest.(check bool) "recovery begin recorded" true
    (has (function Events.Recovery_begin _ -> true | _ -> false));
  Alcotest.(check bool) "replay phase recorded" true
    (has (function
      | Events.Recovery_phase { phase = "constrained-replay"; _ } -> true
      | _ -> false));
  (match
     List.filter_map (function Events.Recovery_end { ok; _ } -> Some ok | _ -> None) bodies
   with
  | [ ok ] -> Alcotest.(check bool) "recovery succeeded" true ok
  | l -> Alcotest.failf "expected one recovery-end, saw %d" (List.length l));
  Alcotest.(check bool) "op completions recorded" true
    (has (function Events.Op_done _ -> true | _ -> false))

(* ---- black-box bundles ---- *)

let test_bundle_on_recovery () =
  let dir = tmpdir () in
  let ctl, _, _ = mk_stack ~bundle_dir:dir () in
  ignore (Controller.create ctl (p "/a") ~mode:0o644);
  Alcotest.(check (list Alcotest.string)) "no bundle before recovery" []
    (Controller.bundles ctl);
  ignore (Controller.create ctl (p "/boom") ~mode:0o644);
  match Controller.bundles ctl with
  | [ path ] -> (
      match Blackbox.check_file path with
      | Error vs -> Alcotest.failf "bundle invalid: %s" (String.concat "; " vs)
      | Ok s ->
          Alcotest.(check string) "schema" Blackbox.schema_version s.Blackbox.s_schema;
          Alcotest.(check string) "kind" Blackbox.kind_recovery s.Blackbox.s_kind;
          Alcotest.(check int) "seq" 1 s.Blackbox.s_seq;
          Alcotest.(check string) "health" "OK" s.Blackbox.s_health;
          Alcotest.(check bool) "flight-recorder tail embedded" true (s.Blackbox.s_events > 0);
          Alcotest.(check bool) "trigger named" true (s.Blackbox.s_trigger <> None))
  | l -> Alcotest.failf "expected exactly one bundle, got %d" (List.length l)

let test_failstop_bundle () =
  (* The unrecoverable-image scenario from test_core, observed through
     the black box: corrupt the on-disk root so fsck refuses S0, and the
     failed recovery must leave a FAILSTOP bundle plus degradation
     events in the recorder. *)
  let dir = tmpdir () in
  let disk =
    Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency
      ~block_size:Rae_format.Layout.block_size ~nblocks:4096 ()
  in
  let dev = Rae_block.Device.of_disk disk in
  Result.get_ok (Base.mkfs dev ~ninodes:256 ());
  let base = Result.get_ok (Base.mount dev) in
  let events = Events.create ~capacity:256 () in
  let ctl = Controller.make ~events ~bundle_dir:dir ~run_id:"test-failstop" ~device:dev base in
  ignore (Controller.create ctl (p "/x") ~mode:0o644);
  ignore (Controller.sync ctl);
  let g =
    (Result.get_ok (Rae_format.Reader.attach (fun blk -> Rae_block.Disk.read disk blk)))
      .Rae_format.Reader.sb
      .Rae_format.Superblock.geometry
  in
  Rae_block.Disk.corrupt_byte disk ~block:g.Rae_format.Layout.data_start ~offset:4 (fun _ -> '\000');
  Rae_block.Disk.corrupt_byte disk ~block:g.Rae_format.Layout.data_start ~offset:5 (fun _ -> '\000');
  ignore (Result.get_ok (Base.contained_reboot (Controller.base ctl)));
  (match Controller.lookup ctl (p "/x") with
  | Error Errno.EIO -> ()
  | _ -> Alcotest.fail "degraded controller must answer EIO");
  Alcotest.(check bool) "health FAILSTOP" true (Controller.health ctl = Events.Failstop);
  (match Controller.bundles ctl with
  | [ path ] -> (
      match Blackbox.check_file path with
      | Error vs -> Alcotest.failf "fail-stop bundle invalid: %s" (String.concat "; " vs)
      | Ok s ->
          Alcotest.(check string) "kind" Blackbox.kind_failstop s.Blackbox.s_kind;
          Alcotest.(check string) "health" "FAILSTOP" s.Blackbox.s_health)
  | l -> Alcotest.failf "expected exactly one bundle, got %d" (List.length l));
  let bodies = List.map (fun e -> e.Events.body) (Events.tail events) in
  Alcotest.(check bool) "degradation recorded" true
    (List.exists (function Events.Degradation _ -> true | _ -> false) bodies);
  Alcotest.(check bool) "failed recovery-end recorded" true
    (List.exists (function Events.Recovery_end { ok = false; _ } -> true | _ -> false) bodies)

let test_blackbox_check_rejects () =
  (match Blackbox.check (Jsonx.Obj [ ("schema", Jsonx.Str "bogus/9") ]) with
  | Ok _ -> Alcotest.fail "bogus bundle must not validate"
  | Error vs ->
      Alcotest.(check bool) "several violations reported" true (List.length vs >= 2));
  match Blackbox.check (Jsonx.Int 3) with
  | Ok _ -> Alcotest.fail "non-object must not validate"
  | Error _ -> ()

let test_blackbox_diff () =
  let a =
    Jsonx.Obj
      [ ("x", Jsonx.Int 1); ("nest", Jsonx.Obj [ ("z", Jsonx.Str "same") ]);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 2 ]) ]
  in
  let b =
    Jsonx.Obj
      [ ("x", Jsonx.Int 2); ("nest", Jsonx.Obj [ ("z", Jsonx.Str "same") ]);
        ("l", Jsonx.List [ Jsonx.Int 1; Jsonx.Int 3 ]) ]
  in
  Alcotest.(check (list string)) "self-diff empty" [] (Blackbox.diff a a);
  let lines = Blackbox.diff a b in
  Alcotest.(check int) "one line per differing leaf" 2 (List.length lines);
  Alcotest.(check bool) "names the scalar path" true
    (List.exists (fun l -> has_sub l "x") lines)

(* ---- tracer ring cap ---- *)

let test_tracer_ring_cap () =
  let now = ref 0L in
  let t = Tracer.create ~clock:(fun () -> !now) ~max_events:16 () in
  Tracer.enable t;
  for i = 1 to 40 do
    now := Int64.of_int (i * 10);
    Tracer.instant t "tick"
  done;
  Alcotest.(check int) "capped at max_events" 16 (List.length (Tracer.events t));
  Alcotest.(check int) "overflow counted" 24 (Tracer.dropped t);
  (* A span whose B was overwritten must not leave a dangling E. *)
  Tracer.span_begin t "doomed";
  for i = 21 to 40 do
    now := Int64.of_int (i * 10);
    Tracer.instant t "tick"
  done;
  Tracer.span_end t;
  match Tracer.validate_chrome (Tracer.to_chrome t) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "capped trace must stay exportable: %s" m

(* ---- JSON: grammar round-trip and metrics snapshots ---- *)

let gen_json =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Jsonx.Null;
               map (fun b -> Jsonx.Bool b) bool;
               map (fun i -> Jsonx.Int i) (int_range (-1_000_000) 1_000_000);
               map (fun s -> Jsonx.Str s) (string_size ~gen:printable (int_bound 12));
             ]
         in
         if n <= 0 then leaf
         else
           oneof
             [
               leaf;
               map (fun l -> Jsonx.List l) (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun l -> Jsonx.Obj l)
                 (list_size (int_bound 4)
                    (pair (string_size ~gen:printable (int_bound 8)) (self (n / 2))));
             ])

let prop_jsonx_roundtrip =
  QCheck2.Test.make ~name:"jsonx print/parse round-trip (compact and pretty)" ~count:300
    ~print:(fun j -> Jsonx.to_string j)
    gen_json
    (fun j ->
      Jsonx.parse (Jsonx.to_string j) = Ok j
      && Jsonx.parse (Jsonx.to_string ~pretty:true j) = Ok j)

let test_jsonx_errors () =
  let bad s = match Jsonx.parse s with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "bare brace" true (bad "{");
  Alcotest.(check bool) "missing value" true (bad "{\"a\":}");
  Alcotest.(check bool) "unterminated list" true (bad "[1,2");
  Alcotest.(check bool) "trailing garbage" true (bad "1 x");
  Alcotest.(check bool) "nan prints as null" true (Jsonx.to_string (Jsonx.Float Float.nan) = "null");
  Alcotest.(check bool) "float survives" true
    (Jsonx.parse (Jsonx.to_string (Jsonx.Float 1.5)) = Ok (Jsonx.Float 1.5))

let test_metrics_json_roundtrip () =
  let reg = Metrics.create () in
  Metrics.register_counter reg ~help:"ops" "m_ops" (fun () -> 42);
  Metrics.register_gauge reg "m_depth" (fun () -> 1.5);
  let h = Metrics.histogram () in
  Metrics.observe h 100L;
  Metrics.observe h 10_000L;
  Metrics.register_histogram reg "m_lat" h;
  (match Jsonx.parse (Metrics.to_json reg) with
  | Error m -> Alcotest.failf "metrics snapshot does not reparse: %s" m
  | Ok j -> (
      match Metrics.snapshot_of_json j with
      | None -> Alcotest.fail "snapshot_of_json rejected its own output"
      | Some kvs -> (
          Alcotest.(check int) "entries" 3 (List.length kvs);
          match
            (List.assoc "m_ops" kvs, List.assoc "m_depth" kvs, List.assoc "m_lat" kvs)
          with
          | Metrics.Counter 42, Metrics.Gauge g, Metrics.Histo { count = 2; _ } ->
              Alcotest.(check (float 0.)) "gauge value" 1.5 g
          | _ -> Alcotest.fail "values did not round-trip")));
  (* Shape mismatches answer None, never an exception. *)
  Alcotest.(check bool) "non-object" true (Metrics.snapshot_of_json (Jsonx.Int 3) = None);
  Alcotest.(check bool) "bad entry" true
    (Metrics.snapshot_of_json (Jsonx.Obj [ ("x", Jsonx.Str "?") ]) = None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          q prop_counts_conserved;
          q prop_quantiles_ordered;
          q prop_quantile_monotone_in_q;
          q prop_quantile_bracketed;
        ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot/reset/replace" `Quick test_registry_snapshot_reset;
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "span basics" `Quick test_span_basics;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_tracer_records_nothing;
          Alcotest.test_case "monotone clamp" `Quick test_monotone_clamp;
          q prop_span_nesting;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "open spans closed" `Quick test_chrome_open_spans_closed_at_export;
          Alcotest.test_case "rejects malformed" `Quick test_chrome_rejects_malformed;
          Alcotest.test_case "ring cap drops oldest, stays exportable" `Quick
            test_tracer_ring_cap;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "wraparound" `Quick test_recorder_wraparound;
          Alcotest.test_case "event json" `Quick test_recorder_json;
          Alcotest.test_case "records through a recovery" `Quick test_record_during_recovery;
        ] );
      ( "blackbox",
        [
          Alcotest.test_case "recovery emits a valid bundle" `Quick test_bundle_on_recovery;
          Alcotest.test_case "fail-stop emits a FAILSTOP bundle" `Quick test_failstop_bundle;
          Alcotest.test_case "checker rejects non-bundles" `Quick test_blackbox_check_rejects;
          Alcotest.test_case "structural diff" `Quick test_blackbox_diff;
        ] );
      ( "json",
        [
          q prop_jsonx_roundtrip;
          Alcotest.test_case "parser rejects malformed" `Quick test_jsonx_errors;
          Alcotest.test_case "metrics snapshot round-trip" `Quick test_metrics_json_roundtrip;
        ] );
      ( "stack",
        [
          Alcotest.test_case "recovery phases + spans" `Quick test_recovery_phases_and_spans;
          Alcotest.test_case "register_obs + reset_stats" `Quick test_register_obs_and_reset;
        ] );
    ]
