(* Unit and property tests for rae_obs: histogram quantiles, the metrics
   registry, span nesting, Chrome-trace export/validation, and the whole
   stack producing phase-timed recovery reports. *)

open Rae_vfs
module Metrics = Rae_obs.Metrics
module Tracer = Rae_obs.Tracer
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Report = Rae_core.Report

let p = Path.parse_exn

(* ---- histograms ---- *)

let samples_gen = QCheck2.Gen.(list_size (int_range 1 400) (int_range 0 1_000_000))

let prop_counts_conserved =
  QCheck2.Test.make ~name:"histogram conserves sample count" ~count:200 samples_gen (fun xs ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      Metrics.h_count h = List.length xs)

let prop_quantiles_ordered =
  QCheck2.Test.make ~name:"p50 <= p90 <= p99 <= max" ~count:200 samples_gen (fun xs ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      let q50 = Metrics.quantile h 0.5
      and q90 = Metrics.quantile h 0.9
      and q99 = Metrics.quantile h 0.99 in
      q50 <= q90 && q90 <= q99 && Metrics.quantile h 0.0 <= q50)

let prop_quantile_monotone_in_q =
  QCheck2.Test.make ~name:"quantile monotone in q" ~count:200
    QCheck2.Gen.(pair samples_gen (list_size (int_range 2 20) (float_range 0. 1.)))
    (fun (xs, qs) ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      let qs = List.sort compare qs in
      let vs = List.map (Metrics.quantile h) qs in
      let rec mono = function a :: (b :: _ as rest) -> a <= b && mono rest | _ -> true in
      mono vs)

let prop_quantile_bracketed =
  QCheck2.Test.make ~name:"quantile stays within [min-bucket, 2*max]" ~count:200 samples_gen
    (fun xs ->
      let h = Metrics.histogram () in
      List.iter (fun x -> Metrics.observe h (Int64.of_int x)) xs;
      let q = Metrics.quantile h 0.99 in
      q >= 0. && q <= Float.max 2. (2. *. Metrics.h_max h))

let test_histogram_basics () =
  let h = Metrics.histogram () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Metrics.quantile h 0.5);
  Metrics.observe h 100L;
  Metrics.observe h (-5L) (* clamped to 0 *);
  Alcotest.(check int) "count" 2 (Metrics.h_count h);
  Alcotest.(check (float 0.)) "sum counts clamped negative as 0" 100. (Metrics.h_sum h);
  Alcotest.(check (float 0.)) "max" 100. (Metrics.h_max h);
  Metrics.h_reset h;
  Alcotest.(check int) "reset count" 0 (Metrics.h_count h);
  Alcotest.(check (float 0.)) "reset max" 0. (Metrics.h_max h)

(* ---- registry ---- *)

let test_registry_snapshot_reset () =
  let reg = Metrics.create () in
  let n = ref 7 in
  Metrics.register_counter reg ~help:"test" ~reset:(fun () -> n := 0) "acme_ops" (fun () -> !n);
  Metrics.register_gauge reg "acme_depth" (fun () -> 2.5);
  let h = Metrics.histogram () in
  Metrics.observe h 1000L;
  Metrics.register_histogram reg "acme_lat" h;
  (match Metrics.find reg "acme_ops" with
  | Some (Metrics.Counter 7) -> ()
  | _ -> Alcotest.fail "counter sample");
  Alcotest.(check (list string)) "names sorted"
    [ "acme_depth"; "acme_lat"; "acme_ops" ]
    (Metrics.names reg);
  Alcotest.(check int) "snapshot size" 3 (List.length (Metrics.snapshot reg));
  (* Re-registering a name replaces the metric. *)
  Metrics.register_gauge reg "acme_depth" (fun () -> 9.);
  (match Metrics.find reg "acme_depth" with
  | Some (Metrics.Gauge g) -> Alcotest.(check (float 0.)) "replaced" 9. g
  | _ -> Alcotest.fail "gauge sample");
  Metrics.reset reg;
  (match Metrics.find reg "acme_ops" with
  | Some (Metrics.Counter 0) -> ()
  | _ -> Alcotest.fail "reset hook ran");
  match Metrics.find reg "acme_lat" with
  | Some (Metrics.Histo { count = 0; _ }) -> ()
  | _ -> Alcotest.fail "histogram cleared by registry reset"

let test_prometheus_export () =
  let reg = Metrics.create () in
  Metrics.register_counter reg ~help:"ops so far" "x_total" (fun () -> 3);
  let h = Metrics.histogram () in
  Metrics.observe h 512L;
  Metrics.register_histogram reg "lat.ns" h;
  let text = Metrics.to_prometheus reg in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (contains "x_total 3");
  Alcotest.(check bool) "TYPE line" true (contains "# TYPE x_total counter");
  Alcotest.(check bool) "HELP line" true (contains "# HELP x_total ops so far");
  Alcotest.(check bool) "name sanitised" true (contains "lat_ns");
  Alcotest.(check bool) "summary count" true (contains "lat_ns_count 1");
  Alcotest.(check bool) "quantile label" true (contains "{quantile=\"0.5\"}")

(* ---- span nesting ---- *)

(* Random begin/end sequences, with enable/disable toggles thrown in: the
   recorded event stream must stay balanced regardless. *)
let prop_span_nesting =
  QCheck2.Test.make ~name:"random begin/end/toggle keeps trace balanced" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 3))
    (fun actions ->
      let t = Tracer.create () in
      Tracer.enable t;
      List.iter
        (fun a ->
          match a with
          | 0 -> Tracer.span_begin t "s"
          | 1 -> Tracer.span_end t
          | 2 -> Tracer.instant t "i"
          | _ -> if Tracer.enabled t then Tracer.disable t else Tracer.enable t)
        actions;
      Tracer.depth t >= 0
      &&
      match Tracer.validate_chrome (Tracer.to_chrome t) with Ok _ -> true | Error _ -> false)

let test_span_basics () =
  let now = ref 0L in
  let t = Tracer.create ~clock:(fun () -> !now) () in
  Tracer.enable t;
  Tracer.span_begin t "outer";
  now := 10L;
  Tracer.span_begin t ~cat:"x" "inner";
  now := 20L;
  Alcotest.(check int) "depth" 2 (Tracer.depth t);
  Tracer.span_end t;
  Tracer.span_end t;
  Tracer.span_end t (* unbalanced end: no-op *);
  Alcotest.(check int) "depth back to 0" 0 (Tracer.depth t);
  match Tracer.events t with
  | [ Tracer.Begin { name = "outer"; _ }; Tracer.Begin { name = "inner"; cat = "x"; _ };
      Tracer.End { name = "inner"; _ }; Tracer.End { name = "outer"; _ } ] ->
      ()
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_disabled_tracer_records_nothing () =
  let t = Tracer.create () in
  Tracer.span_begin t "quiet";
  Tracer.instant t "never";
  Tracer.span_end t;
  Alcotest.(check int) "no events" 0 (List.length (Tracer.events t));
  (* A span opened while disabled must not emit a dangling E once enabled. *)
  Tracer.span_begin t "pre";
  Tracer.enable t;
  Tracer.span_end t;
  Alcotest.(check int) "still no events" 0 (List.length (Tracer.events t))

let test_monotone_clamp () =
  let now = ref 100L in
  let t = Tracer.create ~clock:(fun () -> !now) () in
  Tracer.enable t;
  Tracer.instant t "a";
  now := 50L (* clock goes backwards *);
  Tracer.instant t "b";
  match Tracer.events t with
  | [ Tracer.Instant { ts = a; _ }; Tracer.Instant { ts = b; _ } ] ->
      Alcotest.(check bool) "clamped monotone" true (Int64.compare b a >= 0)
  | _ -> Alcotest.fail "expected two instants"

(* ---- Chrome trace round-trip ---- *)

let test_chrome_roundtrip () =
  let now = ref 0L in
  let t = Tracer.create ~clock:(fun () -> !now) () in
  Tracer.enable t;
  Tracer.instant t "start";
  Tracer.span_begin t "a";
  now := 1500L;
  Tracer.span_begin t "b \"quoted\"";
  now := 2000L;
  Tracer.span_end t;
  Tracer.span_end t;
  let s = Tracer.to_chrome t in
  (match Tracer.validate_chrome s with
  | Ok n -> Alcotest.(check int) "event count" 5 n
  | Error msg -> Alcotest.failf "expected valid trace: %s" msg);
  match Tracer.parse_chrome s with
  | Ok evs ->
      Alcotest.(check int) "parsed all" 5 (List.length evs);
      let names = List.map (fun e -> e.Tracer.ev_name) evs in
      Alcotest.(check bool) "escaped name round-trips" true (List.mem "b \"quoted\"" names)
  | Error msg -> Alcotest.failf "parse: %s" msg

let test_chrome_open_spans_closed_at_export () =
  let t = Tracer.create () in
  Tracer.enable t;
  Tracer.span_begin t "left-open";
  match Tracer.validate_chrome (Tracer.to_chrome t) with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected synthetic close (2 events), got %d" n
  | Error msg -> Alcotest.failf "expected valid trace: %s" msg

let test_chrome_rejects_malformed () =
  let bad input =
    match Tracer.validate_chrome input with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "garbage" true (bad "hello\nworld");
  (* Unbalanced: an E with no matching B. *)
  let unbalanced =
    "{\"traceEvents\":[\n{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"E\",\"ts\":1.0,\"pid\":1,\"tid\":1}\n\
     ],\"displayTimeUnit\":\"ms\"}\n"
  in
  Alcotest.(check bool) "unbalanced" true (bad unbalanced);
  (* Non-monotone timestamps. *)
  let backwards =
    "{\"traceEvents\":[\n\
     {\"name\":\"x\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":5.0,\"pid\":1,\"tid\":1},\n\
     {\"name\":\"x\",\"cat\":\"c\",\"ph\":\"E\",\"ts\":1.0,\"pid\":1,\"tid\":1}\n\
     ],\"displayTimeUnit\":\"ms\"}\n"
  in
  Alcotest.(check bool) "non-monotone" true (bad backwards)

(* ---- the full stack: recovery emits spans and phase timings ---- *)

let armed_panic () =
  Bug_registry.arm
    [
      {
        Bug_registry.id = "test-panic";
        determinism = Bug_registry.Deterministic;
        trigger = Bug_registry.Path_component "boom";
        consequence = Bug_registry.Panic;
        modeled_after = "test";
      };
    ]

let mk_stack () =
  let disk =
    Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency
      ~block_size:Rae_format.Layout.block_size ~nblocks:4096 ()
  in
  let dev = Rae_block.Device.of_disk disk in
  Result.get_ok (Base.mkfs dev ~ninodes:256 ());
  let base = Result.get_ok (Base.mount ~bugs:(armed_panic ()) dev) in
  let tracer = Tracer.create () in
  Tracer.enable tracer;
  let ctl = Controller.make ~tracer ~device:dev base in
  (ctl, tracer)

let test_recovery_phases_and_spans () =
  let ctl, tracer = mk_stack () in
  ignore (Controller.create ctl (p "/a") ~mode:0o644);
  ignore (Controller.mkdir ctl (p "/d") ~mode:0o755);
  ignore (Controller.create ctl (p "/boom") ~mode:0o644);
  let r =
    match Controller.last_recovery ctl with
    | Some r -> r
    | None -> Alcotest.fail "expected a recovery"
  in
  Alcotest.(check bool) "recovered" true (r.Report.r_outcome = Report.Recovered);
  let phase_names = List.map (fun ph -> ph.Report.ph_name) r.Report.r_phases in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " timed") true (List.mem expected phase_names))
    [
      "contained-reboot"; "shadow-attach"; "fd-reinstate"; "constrained-replay";
      "inflight-autonomous"; "metadata-download"; "resume";
    ];
  List.iter
    (fun ph ->
      Alcotest.(check bool) (ph.Report.ph_name ^ " non-negative") true (ph.Report.ph_ns >= 0L))
    r.Report.r_phases;
  (* The rendered report mentions the phases. *)
  let s = Format.asprintf "%a" Report.pp_recovery r in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report prints phases" true (contains "constrained-replay");
  (* And the trace exports balanced with the recovery span present. *)
  (match Tracer.validate_chrome (Tracer.to_chrome tracer) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "trace invalid after recovery: %s" msg);
  Alcotest.(check bool) "recovery span" true
    (List.exists
       (function Tracer.Begin { name = "recovery"; _ } -> true | _ -> false)
       (Tracer.events tracer))

let test_register_obs_and_reset () =
  let ctl, _ = mk_stack () in
  let reg = Metrics.create () in
  Controller.register_obs reg ctl;
  ignore (Controller.create ctl (p "/a") ~mode:0o644);
  ignore (Controller.create ctl (p "/boom") ~mode:0o644);
  (match Metrics.find reg "rae_recoveries_total" with
  | Some (Metrics.Counter 1) -> ()
  | Some (Metrics.Counter n) -> Alcotest.failf "expected 1 recovery, sampled %d" n
  | _ -> Alcotest.fail "rae_recoveries_total missing");
  (match Metrics.find reg "rae_recovery_ns" with
  | Some (Metrics.Histo { count = 1; _ }) -> ()
  | _ -> Alcotest.fail "recovery latency histogram not fed");
  (match Metrics.find reg "base_ops_total" with
  | Some (Metrics.Counter n) when n > 0 -> ()
  | _ -> Alcotest.fail "base metrics not registered");
  (* Controller.reset_stats zeroes counters but keeps the recovery log. *)
  Controller.reset_stats ctl;
  let s = Controller.stats ctl in
  Alcotest.(check int) "ops reset" 0 s.Controller.ops;
  Alcotest.(check int) "recoveries reset" 0 s.Controller.recoveries;
  Alcotest.(check int) "recorded reset" 0 s.Controller.total_recorded;
  Alcotest.(check int) "log kept" 1 (List.length (Controller.recoveries ctl));
  (* Metrics.reset drives the same hooks through the registry. *)
  ignore (Controller.create ctl (p "/b") ~mode:0o644);
  Metrics.reset reg;
  match Metrics.find reg "rae_ops_total" with
  | Some (Metrics.Counter 0) -> ()
  | _ -> Alcotest.fail "registry reset did not zero controller counters"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          q prop_counts_conserved;
          q prop_quantiles_ordered;
          q prop_quantile_monotone_in_q;
          q prop_quantile_bracketed;
        ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot/reset/replace" `Quick test_registry_snapshot_reset;
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "span basics" `Quick test_span_basics;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_tracer_records_nothing;
          Alcotest.test_case "monotone clamp" `Quick test_monotone_clamp;
          q prop_span_nesting;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "round-trip" `Quick test_chrome_roundtrip;
          Alcotest.test_case "open spans closed" `Quick test_chrome_open_spans_closed_at_export;
          Alcotest.test_case "rejects malformed" `Quick test_chrome_rejects_malformed;
        ] );
      ( "stack",
        [
          Alcotest.test_case "recovery phases + spans" `Quick test_recovery_phases_and_spans;
          Alcotest.test_case "register_obs + reset_stats" `Quick test_register_obs_and_reset;
        ] );
    ]
