(* Tests for rae_srv: wire-codec round-trips and rejection of malformed
   input, session fd-virtualization and quotas, server scheduling
   (backpressure, fairness, idle eviction), and the serving layer's core
   promise — recovery transparency: concurrent clients riding over a
   masked base-filesystem bug observe only successful responses plus a
   recovery notification. *)

open Rae_vfs
module Wire = Rae_srv.Wire
module Session = Rae_srv.Session
module Server = Rae_srv.Server
module Loopback = Rae_srv.Loopback
module Client = Rae_srv.Srv_client
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Layout = Rae_format.Layout

let p = Path.parse_exn

let ok_or name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" name (Errno.to_string e)

let arm ids =
  Bug_registry.arm ~rng:(Rae_util.Rng.create 7L) (List.filter_map Bug_registry.find ids)

let mk_ctl ?bugs ?bundle_dir ?events () =
  let disk =
    Disk.create ~latency:Disk.zero_latency ~block_size:Layout.block_size ~nblocks:2048 ()
  in
  let dev = Device.of_disk disk in
  ignore (Result.get_ok (Base.mkfs dev ~ninodes:256 ()));
  let base = Result.get_ok (Base.mount ?bugs dev) in
  Controller.make ?events ?bundle_dir ~run_id:"test-srv" ~device:dev base

(* A fresh directory path for bundle-emission tests; the controller's
   bundle writer creates it on first use. *)
let tmpdir () =
  let path = Filename.temp_file "rae-test-bundles" "" in
  Sys.remove path;
  path

(* ---- wire generators ---- *)

let gen_component =
  QCheck2.Gen.(
    map (fun s -> if Path.component_ok s then s else "c") (string_size (int_range 1 8)))

let gen_path = QCheck2.Gen.(list_size (int_bound 4) gen_component)
let gen_str = QCheck2.Gen.(string_size (int_bound 32))
let gen_small = QCheck2.Gen.int_bound 1_000_000

let gen_flags =
  QCheck2.Gen.(
    map
      (fun bits ->
        let bit i = bits land (1 lsl i) <> 0 in
        {
          Types.rd = bit 0;
          wr = bit 1;
          creat = bit 2;
          excl = bit 3;
          trunc = bit 4;
          append = bit 5;
        })
      (int_bound 63))

let gen_op =
  let open QCheck2.Gen in
  oneof
    [
      map2 (fun p m -> Op.Create (p, m)) gen_path (int_bound 0o777);
      map2 (fun p m -> Op.Mkdir (p, m)) gen_path (int_bound 0o777);
      map (fun p -> Op.Unlink p) gen_path;
      map (fun p -> Op.Rmdir p) gen_path;
      map2 (fun p f -> Op.Open (p, f)) gen_path gen_flags;
      map (fun fd -> Op.Close fd) gen_small;
      map3 (fun fd off len -> Op.Pread (fd, off, len)) gen_small gen_small gen_small;
      map3 (fun fd off data -> Op.Pwrite (fd, off, data)) gen_small gen_small gen_str;
      map (fun p -> Op.Lookup p) gen_path;
      map (fun p -> Op.Stat p) gen_path;
      map (fun fd -> Op.Fstat fd) gen_small;
      map (fun p -> Op.Readdir p) gen_path;
      map2 (fun a b -> Op.Rename (a, b)) gen_path gen_path;
      map2 (fun p n -> Op.Truncate (p, n)) gen_path gen_small;
      map2 (fun a b -> Op.Link (a, b)) gen_path gen_path;
      map2 (fun t p -> Op.Symlink (t, p)) gen_str gen_path;
      map (fun p -> Op.Readlink p) gen_path;
      map2 (fun p m -> Op.Chmod (p, m)) gen_path (int_bound 0o777);
      map (fun fd -> Op.Fsync fd) gen_small;
      return Op.Sync;
    ]

let gen_stat =
  let open QCheck2.Gen in
  let* st_ino = gen_small in
  let* st_kind = oneofl [ Types.Regular; Types.Directory; Types.Symlink ] in
  let* st_size = gen_small in
  let* st_nlink = int_bound 64 in
  let* st_mode = int_bound 0o777 in
  let* mt = gen_small in
  let+ ct = gen_small in
  {
    Types.st_ino;
    st_kind;
    st_size;
    st_nlink;
    st_mode;
    st_mtime = Int64.of_int mt;
    st_ctime = Int64.of_int ct;
  }

let gen_errno = QCheck2.Gen.oneofl Errno.all

let gen_value =
  let open QCheck2.Gen in
  oneof
    [
      return Op.Unit;
      map (fun fd -> Op.Fd fd) gen_small;
      map (fun i -> Op.Ino i) gen_small;
      map (fun s -> Op.Data s) gen_str;
      map (fun n -> Op.Len n) gen_small;
      map (fun st -> Op.St st) gen_stat;
      map (fun ns -> Op.Names ns) (list_size (int_bound 5) gen_component);
    ]

let gen_outcome =
  QCheck2.Gen.(
    oneof [ map (fun v -> Ok v) gen_value; map (fun e -> Error e) gen_errno ])

let gen_frame =
  let open QCheck2.Gen in
  oneof
    [
      map (fun version -> Wire.Hello { version }) (int_bound 0xffff);
      map2 (fun session version -> Wire.Hello_ok { session; version }) gen_small
        (int_bound 0xffff);
      return Wire.Detach;
      return Wire.Detach_ok;
      map (fun token -> Wire.Ping { token }) gen_small;
      map (fun token -> Wire.Pong { token }) gen_small;
      return Wire.Stats_req;
      ( let* ws_sessions = int_bound 1000 in
        let* ws_served = gen_small in
        let* ws_busy = gen_small in
        let* ws_recoveries = int_bound 1000 in
        let+ ws_degraded = bool in
        Wire.Stats_reply { ws_sessions; ws_served; ws_busy; ws_recoveries; ws_degraded } );
      map3 (fun req corr op -> Wire.Op_req { req; corr; op }) gen_small gen_small gen_op;
      map2 (fun req outcome -> Wire.Op_reply { req; outcome }) gen_small gen_outcome;
      map2
        (fun req retry_after_ms -> Wire.Busy { req; retry_after_ms })
        gen_small (int_bound 0xffff);
      map2 (fun errno msg -> Wire.Err { errno; msg }) gen_errno gen_str;
      map (fun reason -> Wire.Note_degraded { reason }) gen_str;
      ( let* seq = int_bound 1000 in
        let* trigger = gen_str in
        let+ wall_us = gen_small in
        Wire.Note_recovered { seq; trigger; wall_us } );
      return Wire.Metrics_req;
      map (fun text -> Wire.Metrics_reply { text }) gen_str;
      return Wire.Bundles_req;
      map (fun names -> Wire.Bundles_reply { names }) (list_size (int_bound 5) gen_str);
      map (fun name -> Wire.Bundle_req { name }) gen_str;
      map2 (fun name data -> Wire.Bundle_reply { name; data }) gen_str gen_str;
    ]

let frame_to_string = Format.asprintf "%a" Wire.pp_frame

(* ---- wire properties ---- *)

let prop_roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip for every frame" ~count:800
    ~print:frame_to_string gen_frame (fun f ->
      let s = Wire.encode f in
      match Wire.decode_string s with
      | Wire.Frame (g, n) -> Wire.equal_frame f g && n = String.length s
      | Wire.Need_more | Wire.Fail _ -> false)

let prop_encode_into_matches_encode =
  (* The server's zero-allocation encoder must produce byte-identical
     output to the plain encoder.  One encoder instance is reused across
     the whole list so the scratch buffer's grow-and-reuse path is
     exercised by the size spread of consecutive frames. *)
  QCheck2.Test.make ~name:"encode_into = encode, one encoder reused" ~count:200
    ~print:(fun fs -> String.concat " | " (List.map frame_to_string fs))
    QCheck2.Gen.(list_size (int_range 1 8) gen_frame)
    (fun frames ->
      let enc = Wire.encoder () in
      let out = Buffer.create 256 in
      List.for_all
        (fun f ->
          Buffer.clear out;
          Wire.encode_into enc f out;
          Buffer.contents out = Wire.encode f)
        frames)

let prop_truncated =
  QCheck2.Test.make ~name:"every strict prefix decodes to Need_more" ~count:200
    ~print:frame_to_string gen_frame (fun f ->
      let s = Wire.encode f in
      let all = ref true in
      for cut = 0 to String.length s - 1 do
        match Wire.decode_string (String.sub s 0 cut) with
        | Wire.Need_more -> ()
        | Wire.Frame _ | Wire.Fail _ -> all := false
      done;
      !all)

let prop_corrupted =
  QCheck2.Test.make ~name:"single-byte corruption never yields a frame" ~count:800
    ~print:(fun (f, (at, flip)) ->
      Printf.sprintf "%s, byte %d xor %#x" (frame_to_string f) at flip)
    QCheck2.Gen.(pair gen_frame (pair (int_bound 100_000) (int_range 1 255)))
    (fun (f, (at, flip)) ->
      let s = Wire.encode f in
      let b = Bytes.of_string s in
      let at = at mod Bytes.length b in
      Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor flip));
      (* The checksum (or an up-front header check) must catch any flip; a
         flip in the length field may legally leave the decoder waiting for
         more bytes, but a successfully decoded frame is a codec bug. *)
      match Wire.decode b ~pos:0 ~len:(Bytes.length b) with
      | Wire.Frame _ -> false
      | Wire.Need_more | Wire.Fail _ -> true)

let prop_chunked =
  QCheck2.Test.make ~name:"chunked stream reassembles to the same frames" ~count:200
    ~print:(fun (fs, chunk) ->
      Printf.sprintf "%d frames, %d-byte chunks" (List.length fs) chunk)
    QCheck2.Gen.(pair (list_size (int_range 1 6) gen_frame) (int_range 1 13))
    (fun (frames, chunk) ->
      let s = String.concat "" (List.map (fun f -> Wire.encode f) frames) in
      let got = ref [] in
      let backlog = ref "" in
      let pos = ref 0 in
      let corrupt = ref false in
      while !pos < String.length s do
        let n = min chunk (String.length s - !pos) in
        backlog := !backlog ^ String.sub s !pos n;
        pos := !pos + n;
        let continue = ref true in
        while !continue do
          match Wire.decode_string !backlog with
          | Wire.Frame (f, used) ->
              got := f :: !got;
              backlog := String.sub !backlog used (String.length !backlog - used)
          | Wire.Need_more -> continue := false
          | Wire.Fail _ ->
              corrupt := true;
              continue := false
        done
      done;
      let got = List.rev !got in
      (not !corrupt)
      && !backlog = ""
      && List.length got = List.length frames
      && List.for_all2 Wire.equal_frame frames got)

let test_errno_wire_total () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Errno.to_string e))
        true
        (Errno.equal e (Errno.of_wire (Errno.to_wire e))))
    Errno.all;
  Alcotest.(check int) "codes injective" (List.length Errno.all)
    (List.length (List.sort_uniq compare (List.map Errno.to_wire Errno.all)));
  (* Every byte decodes to *something*; codes no constructor claims are EIO. *)
  let claimed = List.map Errno.to_wire Errno.all in
  for code = 0 to 255 do
    let e = Errno.of_wire code in
    if not (List.mem code claimed) then
      Alcotest.(check bool)
        (Printf.sprintf "unclaimed code %d is EIO" code)
        true (Errno.equal e Errno.EIO)
  done

let test_decode_garbage () =
  (* Not crafted frames, just noise: must never raise. *)
  let rng = Rae_util.Rng.create 3L in
  for _ = 1 to 200 do
    let len = Rae_util.Rng.int rng 64 in
    let b = Bytes.init len (fun _ -> Char.chr (Rae_util.Rng.int rng 256)) in
    match Wire.decode b ~pos:0 ~len with
    | Wire.Frame _ | Wire.Need_more | Wire.Fail _ -> ()
  done

(* ---- protocol versioning: the corr-id extension ---- *)

let test_wire_corr_versioning () =
  let f = Wire.Op_req { req = 7; corr = 0xbeef; op = Op.Sync } in
  (* v2 (the default) round-trips the correlation id. *)
  (match Wire.decode_string (Wire.encode f) with
  | Wire.Frame (Wire.Op_req { req = 7; corr = 0xbeef; op = Op.Sync }, _) -> ()
  | _ -> Alcotest.fail "v2 must round-trip corr");
  (* A v1 frame carries no corr bytes: it decodes with corr = 0 and is
     byte-identical to the pre-extension encoding. *)
  let v1 = Wire.encode ~version:Wire.min_protocol_version f in
  (match Wire.decode_string v1 with
  | Wire.Frame (Wire.Op_req { req = 7; corr = 0; op = Op.Sync }, _) -> ()
  | _ -> Alcotest.fail "v1 must decode with corr = 0");
  Alcotest.(check string) "v1 encoding ignores corr" v1
    (Wire.encode ~version:Wire.min_protocol_version
       (Wire.Op_req { req = 7; corr = 0; op = Op.Sync }));
  Alcotest.(check bool) "corr costs bytes only in v2" true
    (String.length (Wire.encode f) > String.length v1);
  (* Observability frames do not exist in v1: a v1-framed Metrics_req is
     rejected at decode, never mis-parsed. *)
  match Wire.decode_string (Wire.encode ~version:Wire.min_protocol_version Wire.Metrics_req) with
  | Wire.Fail _ -> ()
  | Wire.Frame _ | Wire.Need_more -> Alcotest.fail "v2-only tag must not decode as v1"

(* ---- session unit tests ---- *)

let test_session_translate_ebadf () =
  let s = Session.create ~id:1 Session.default_config in
  List.iter
    (fun op ->
      match Session.translate s op with
      | Error Errno.EBADF -> ()
      | Ok _ | Error _ -> Alcotest.failf "%s: expected EBADF" (Op.to_string op))
    [ Op.Close 3; Op.Pread (3, 0, 1); Op.Pwrite (3, 0, "x"); Op.Fstat 3; Op.Fsync 3 ]

let test_session_fd_binding () =
  let s = Session.create ~id:1 Session.default_config in
  let v0 = Session.bind_fd s ~real:40 in
  let v1 = Session.bind_fd s ~real:41 in
  Alcotest.(check bool) "distinct vfds" true (v0 <> v1);
  (match Session.translate s (Op.Fstat v1) with
  | Ok (Op.Fstat 41) -> ()
  | _ -> Alcotest.fail "translate should rewrite to the controller fd");
  Session.release_fd s ~vfd:v0;
  (match Session.translate s (Op.Fstat v0) with
  | Error Errno.EBADF -> ()
  | _ -> Alcotest.fail "released vfd must be EBADF");
  Alcotest.(check int) "one fd left" 1 (Session.fd_count s)

let test_session_fd_quota () =
  let s = Session.create ~id:1 { Session.default_config with Session.max_fds = 2 } in
  ignore (Session.bind_fd s ~real:10);
  ignore (Session.bind_fd s ~real:11);
  match Session.translate s (Op.Open ([ "x" ], Types.flags_ro)) with
  | Error Errno.EMFILE -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected EMFILE at the descriptor quota"

let test_session_inflight_quota () =
  let s = Session.create ~id:1 { Session.default_config with Session.max_inflight = 2 } in
  Alcotest.(check bool) "first queued" true (Session.enqueue s ~req:1 ~corr:0 Op.Sync = `Queued);
  Alcotest.(check bool) "second queued" true (Session.enqueue s ~req:2 ~corr:0 Op.Sync = `Queued);
  Alcotest.(check bool) "third refused" true (Session.enqueue s ~req:3 ~corr:0 Op.Sync = `Busy);
  ignore (Session.dequeue s);
  Alcotest.(check bool) "slot freed" true (Session.enqueue s ~req:4 ~corr:0 Op.Sync = `Queued)

(* ---- raw-frame server tests ---- *)

let decode_all name s =
  let b = Bytes.of_string s in
  let rec go pos acc =
    if pos >= Bytes.length b then List.rev acc
    else
      match Wire.decode b ~pos ~len:(Bytes.length b - pos) with
      | Wire.Frame (f, n) -> go (pos + n) (f :: acc)
      | Wire.Need_more -> List.rev acc
      | Wire.Fail e -> Alcotest.failf "%s: stream corrupt: %a" name Wire.pp_error e
  in
  go 0 []

let attach server =
  let cid = Server.open_conn server in
  Server.feed server cid (Wire.encode (Wire.Hello { version = Wire.protocol_version }));
  (match decode_all "hello" (Server.output server cid) with
  | [ Wire.Hello_ok _ ] -> ()
  | fs -> Alcotest.failf "expected hello_ok, got %d frame(s)" (List.length fs));
  cid

let test_server_bad_hello () =
  let server = Server.create (mk_ctl ()) in
  let cid = Server.open_conn server in
  Server.feed server cid (Wire.encode (Wire.Hello { version = 99 }));
  (match decode_all "bad hello" (Server.output server cid) with
  | [ Wire.Err { errno = Errno.EPROTO; _ } ] -> ()
  | _ -> Alcotest.fail "expected a protocol Err frame");
  Alcotest.(check bool) "connection dropped" true (Server.conn_closed server cid);
  Alcotest.(check bool) "counted" true ((Server.stats server).Server.protocol_errors >= 1)

let test_server_op_before_hello () =
  let server = Server.create (mk_ctl ()) in
  let cid = Server.open_conn server in
  Server.feed server cid (Wire.encode (Wire.Op_req { req = 1; corr = 0; op = Op.Sync }));
  Alcotest.(check bool) "connection dropped" true (Server.conn_closed server cid)

let test_server_corrupt_stream_drops () =
  let server = Server.create (mk_ctl ()) in
  let cid = attach server in
  Server.feed server cid "\xff\xff garbage that is not a frame";
  Alcotest.(check bool) "connection dropped" true (Server.conn_closed server cid)

let test_server_backpressure () =
  let server = Server.create (mk_ctl ()) in
  let cid = attach server in
  let inflight = Server.default_config.Server.session.Session.max_inflight in
  let burst = inflight + 4 in
  let blob = Buffer.create 1024 in
  for r = 1 to burst do
    Buffer.add_string blob (Wire.encode (Wire.Op_req { req = r; corr = 0; op = Op.Sync }))
  done;
  Server.feed server cid (Buffer.contents blob);
  while Server.step server > 0 do
    ()
  done;
  let frames = decode_all "burst" (Server.output server cid) in
  let replies, busies =
    List.fold_left
      (fun (r, b) f ->
        match f with
        | Wire.Op_reply { outcome = Ok _; _ } -> (r + 1, b)
        | Wire.Op_reply { outcome = Error e; _ } ->
            Alcotest.failf "sync failed: %s" (Errno.to_string e)
        | Wire.Busy { retry_after_ms; _ } ->
            Alcotest.(check bool) "retry hint positive" true (retry_after_ms > 0);
            (r, b + 1)
        | f -> Alcotest.failf "unexpected frame %s" (frame_to_string f))
      (0, 0) frames
  in
  Alcotest.(check int) "queued requests all served" inflight replies;
  Alcotest.(check int) "overflow refused with Busy" (burst - inflight) busies;
  Alcotest.(check int) "busy counted" (burst - inflight) (Server.stats server).Server.busy

let test_server_fairness () =
  let server = Server.create (mk_ctl ()) in
  let flooder = attach server in
  let light = attach server in
  let quota = Server.default_config.Server.session.Session.max_ops_per_turn in
  let blob = Buffer.create 1024 in
  for r = 1 to 2 * quota do
    Buffer.add_string blob (Wire.encode (Wire.Op_req { req = r; corr = 0; op = Op.Sync }))
  done;
  Server.feed server flooder (Buffer.contents blob);
  Server.feed server light (Wire.encode (Wire.Op_req { req = 1; corr = 0; op = Op.Sync }));
  (* One turn: round-robin dispatch must reach the light session despite the
     flood, and the flooder must not exceed its per-turn quota. *)
  let served = Server.step server in
  Alcotest.(check int) "flooder capped at quota, light served" (quota + 1) served;
  match decode_all "light" (Server.output server light) with
  | [ Wire.Op_reply { req = 1; outcome = Ok _ } ] -> ()
  | fs -> Alcotest.failf "light session starved (%d frame(s))" (List.length fs)

let test_server_idle_eviction () =
  let config = { Server.default_config with Server.idle_timeout = 2 } in
  let server = Server.create ~config (mk_ctl ()) in
  let cid = attach server in
  for _ = 1 to 5 do
    ignore (Server.step server)
  done;
  Alcotest.(check int) "evicted" 1 (Server.stats server).Server.evicted;
  Alcotest.(check bool) "connection dropped" true (Server.conn_closed server cid);
  Alcotest.(check int) "no sessions left" 0 (Server.stats server).Server.sessions

(* ---- loopback integration: recovery transparency ---- *)

(* The ISSUE's acceptance test: four concurrent sessions, a deterministic
   panic bug armed in the base, one client trips it mid-run.  Every client
   must observe only successful responses — the shadow's answers — plus
   exactly one Note_recovered push; nobody sees an error or a dropped
   connection. *)
let test_recovery_transparency () =
  let ctl = mk_ctl ~bugs:(arm [ "crafted-name-panic" ]) () in
  let server = Server.create ctl in
  let hub = Loopback.create server in
  let clients =
    Array.init 4 (fun i ->
        match Client.connect ~dial:(Loopback.dial hub) () with
        | Ok c -> c
        | Error m -> Alcotest.failf "client %d: %s" i m)
  in
  let rounds = 8 in
  for k = 0 to rounds - 1 do
    Array.iteri
      (fun i c ->
        (* Client 0 trips the armed bug halfway through: creating a name
           containing the trigger component panics the base filesystem. *)
        if i = 0 && k = rounds / 2 then
          ignore (ok_or "trigger create" (Client.create c (p "/pwn") ~mode:0o644));
        let path = p (Printf.sprintf "/f%d_%d" i k) in
        ignore (ok_or "create" (Client.create c path ~mode:0o644));
        let fd = ok_or "open" (Client.openf c path Types.flags_rw) in
        let wrote = ok_or "pwrite" (Client.pwrite c fd ~off:0 (String.make 64 'z')) in
        Alcotest.(check int) "full write" 64 wrote;
        let data = ok_or "pread" (Client.pread c fd ~off:0 ~len:64) in
        Alcotest.(check string) "read back" (String.make 64 'z') data;
        let st = ok_or "fstat" (Client.fstat c fd) in
        Alcotest.(check int) "size" 64 st.Types.st_size;
        ok_or "close" (Client.close c fd))
      clients
  done;
  Alcotest.(check int) "exactly one recovery" 1 (Controller.stats ctl).Controller.recoveries;
  Alcotest.(check (option Alcotest.string)) "never degraded" None (Controller.degraded ctl);
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "client %d saw one recovery notice" i)
        1 (Client.recovered_seen c);
      Alcotest.(check (option Alcotest.string))
        (Printf.sprintf "client %d not degraded" i)
        None (Client.degraded c);
      Client.detach c)
    clients

(* ---- loopback integration: reconnect and fd re-validation ---- *)

let test_reconnect_revalidates_fds () =
  let ctl = mk_ctl () in
  let config = { Server.default_config with Server.idle_timeout = 2 } in
  let server = Server.create ~config ctl in
  let hub = Loopback.create server in
  let c =
    match Client.connect ~dial:(Loopback.dial hub) () with
    | Ok c -> c
    | Error m -> Alcotest.failf "connect: %s" m
  in
  ignore (ok_or "create keep" (Client.create c (p "/keep") ~mode:0o644));
  ignore (ok_or "create gone" (Client.create c (p "/gone") ~mode:0o644));
  let fd_keep = ok_or "open keep" (Client.openf c (p "/keep") Types.flags_rw) in
  let fd_gone = ok_or "open gone" (Client.openf c (p "/gone") Types.flags_rw) in
  ignore (ok_or "seed keep" (Client.pwrite c fd_keep ~off:0 "payload"));
  (* The server evicts the idle session (releasing its controller fds), and
     another actor removes /gone behind the client's back. *)
  for _ = 1 to 5 do
    ignore (Loopback.pump hub)
  done;
  Alcotest.(check int) "session evicted" 1 (Server.stats server).Server.evicted;
  ignore (ok_or "unlink behind the back" (Controller.unlink ctl (p "/gone")));
  (* Next operation detects the lost connection, re-dials, re-attaches and
     re-validates: /keep resolves again (same client-visible fd), /gone is
     stale and answers EBADF locally. *)
  let data = ok_or "pread after reconnect" (Client.pread c fd_keep ~off:0 ~len:7) in
  Alcotest.(check string) "content survived reconnect" "payload" data;
  Alcotest.(check int) "one reconnect" 1 (Client.reconnects c);
  Alcotest.(check int) "one stale fd" 1 (Client.stale_fds c);
  (match Client.pread c fd_gone ~off:0 ~len:1 with
  | Error Errno.EBADF -> ()
  | Ok _ | Error _ -> Alcotest.fail "stale fd must answer EBADF");
  ok_or "closing a stale fd succeeds" (Client.close c fd_gone);
  (* The freed slot is usable again. *)
  let fd2 = ok_or "reopen" (Client.openf c (p "/keep") Types.flags_ro) in
  Alcotest.(check int) "lowest-free fd reused" fd_gone fd2;
  Client.detach c

let test_client_detach_then_eio () =
  let server = Server.create (mk_ctl ()) in
  let hub = Loopback.create server in
  let c =
    match Client.connect ~dial:(Loopback.dial hub) () with
    | Ok c -> c
    | Error m -> Alcotest.failf "connect: %s" m
  in
  Alcotest.(check bool) "ping" true (Client.ping c);
  Client.detach c;
  match Client.lookup c (p "/") with
  | Error Errno.EIO -> ()
  | Ok _ | Error _ -> Alcotest.fail "operations after detach must be EIO"

(* ---- observability verbs: metrics, bundle listing, bundle fetch ---- *)

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_obs_verbs () =
  let dir = tmpdir () in
  let ctl =
    mk_ctl ~bugs:(arm [ "crafted-name-panic" ]) ~bundle_dir:dir
      ~events:(Rae_obs.Events.create ~capacity:128 ()) ()
  in
  let server = Server.create ctl in
  Server.set_metrics_source server (fun () -> "# HELP x_total test\nx_total 1\n");
  let hub = Loopback.create server in
  let c =
    match Client.connect ~dial:(Loopback.dial hub) () with
    | Ok c -> c
    | Error m -> Alcotest.failf "connect: %s" m
  in
  (match Client.metrics c with
  | Ok text -> Alcotest.(check bool) "prometheus text served" true (has_sub text "x_total 1")
  | Error e -> Alcotest.failf "metrics: %s" (Errno.to_string e));
  (match Client.bundles c with
  | Ok [] -> ()
  | Ok l -> Alcotest.failf "expected no bundles yet, got %d" (List.length l)
  | Error e -> Alcotest.failf "bundles: %s" (Errno.to_string e));
  (match Client.fetch_bundle c "no-such-bundle.json" with
  | Error Errno.ENOENT -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown bundle must answer ENOENT");
  Alcotest.(check bool) "connection survives the ENOENT" true (Client.ping c);
  (* Trip the armed bug; the recovery bundle becomes fetchable over the
     same protocol, and what arrives validates against the schema. *)
  Client.set_corr c 77;
  ignore (ok_or "trigger" (Client.create c (p "/pwn") ~mode:0o644));
  (match Client.bundles c with
  | Ok [ name ] -> (
      match Client.fetch_bundle c name with
      | Error e -> Alcotest.failf "fetch_bundle: %s" (Errno.to_string e)
      | Ok data -> (
          match Rae_obs.Jsonx.parse data with
          | Error m -> Alcotest.failf "served bundle is not JSON: %s" m
          | Ok j -> (
              match Rae_obs.Blackbox.check j with
              | Ok s ->
                  Alcotest.(check bool) "bundle names a session" true
                    (s.Rae_obs.Blackbox.s_sessions >= 1)
              | Error vs ->
                  Alcotest.failf "served bundle invalid: %s" (String.concat "; " vs))))
  | Ok l -> Alcotest.failf "expected one bundle, got %d" (List.length l)
  | Error e -> Alcotest.failf "bundles: %s" (Errno.to_string e));
  Client.detach c

(* ---- the acceptance scenario: a 4-session recovery bundle names every
   impacted session via its client correlation id ---- *)

let test_bundle_names_impacted_sessions () =
  let dir = tmpdir () in
  let ctl =
    mk_ctl ~bugs:(arm [ "crafted-name-panic" ]) ~bundle_dir:dir
      ~events:(Rae_obs.Events.create ~capacity:256 ()) ()
  in
  let server = Server.create ctl in
  let attach_sid () =
    let cid = Server.open_conn server in
    Server.feed server cid (Wire.encode (Wire.Hello { version = Wire.protocol_version }));
    match decode_all "hello" (Server.output server cid) with
    | [ Wire.Hello_ok { session; _ } ] -> (cid, session)
    | fs -> Alcotest.failf "expected hello_ok, got %d frame(s)" (List.length fs)
  in
  let conns = Array.init 4 (fun _ -> attach_sid ()) in
  let corr_of i = 100 + i in
  (* Sessions 1-3 queue two requests each; session 0 queues the trigger.
     Round-robin dispatch serves one request per session per pass, so when
     the trigger dispatches (first pass) every other session still has at
     least one request pending — the bundle emitted inside that dispatch
     must name all four sessions and their corr ids. *)
  Array.iteri
    (fun i (cid, _) ->
      if i = 0 then
        Server.feed server cid
          (Wire.encode (Wire.Op_req { req = 1; corr = corr_of 0; op = Op.Create (p "/pwn", 0o644) }))
      else begin
        Server.feed server cid
          (Wire.encode
             (Wire.Op_req
                { req = 1; corr = corr_of i; op = Op.Create (p (Printf.sprintf "/f%d" i), 0o644) }));
        Server.feed server cid
          (Wire.encode (Wire.Op_req { req = 2; corr = corr_of i; op = Op.Stat (p "/") }))
      end)
    conns;
  while Server.step server > 0 do
    ()
  done;
  Alcotest.(check int) "one recovery" 1 (Controller.stats ctl).Controller.recoveries;
  let path =
    match Controller.bundles ctl with
    | [ path ] -> path
    | l -> Alcotest.failf "expected one bundle, got %d" (List.length l)
  in
  let module J = Rae_obs.Jsonx in
  let json =
    match Rae_obs.Blackbox.read_file path with
    | Error m -> Alcotest.failf "read bundle: %s" m
    | Ok data -> (
        match J.parse data with
        | Ok j -> j
        | Error m -> Alcotest.failf "parse bundle: %s" m)
  in
  (match Rae_obs.Blackbox.check ~path json with
  | Ok _ -> ()
  | Error vs -> Alcotest.failf "bundle invalid: %s" (String.concat "; " vs));
  let sessions =
    match Option.bind (J.member "impacted_sessions" json) J.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "bundle lacks impacted_sessions"
  in
  Alcotest.(check int) "all four sessions named" 4 (List.length sessions);
  let entry_for sid =
    List.find_opt (fun s -> Option.bind (J.member "session" s) J.to_int_opt = Some sid) sessions
  in
  Array.iteri
    (fun i (_, sid) ->
      match entry_for sid with
      | None -> Alcotest.failf "session %d missing from bundle" sid
      | Some s ->
          let corrs =
            match Option.bind (J.member "corr_ids" s) J.to_list_opt with
            | Some l -> List.filter_map J.to_int_opt l
            | None -> []
          in
          Alcotest.(check bool)
            (Printf.sprintf "session %d tagged with corr %d" sid (corr_of i))
            true
            (List.mem (corr_of i) corrs))
    conns;
  (* The request that tripped the recovery shows as in flight for its
     session: it was mid-dispatch when the bundle was cut. *)
  (match entry_for (snd conns.(0)) with
  | None -> Alcotest.fail "triggering session missing"
  | Some s ->
      let inflight =
        match Option.bind (J.member "inflight" s) J.to_list_opt with Some l -> l | None -> []
      in
      Alcotest.(check bool) "triggering request in flight" true
        (List.exists (fun e -> Option.bind (J.member "req" e) J.to_int_opt = Some 1) inflight));
  (* Recovery transparency still holds: every queued request is answered
     with a successful Op_reply despite the mid-batch recovery. *)
  Array.iteri
    (fun i (cid, _) ->
      let replies =
        List.filter_map
          (function Wire.Op_reply { outcome; _ } -> Some outcome | _ -> None)
          (decode_all "replies" (Server.output server cid))
      in
      Alcotest.(check int)
        (Printf.sprintf "client %d reply count" i)
        (if i = 0 then 1 else 2)
        (List.length replies);
      List.iter
        (function
          | Ok _ -> ()
          | Error e -> Alcotest.failf "client %d saw %s" i (Errno.to_string e))
        replies)
    conns

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_srv"
    [
      ( "wire",
        [
          q prop_roundtrip;
          q prop_encode_into_matches_encode;
          q prop_truncated;
          q prop_corrupted;
          q prop_chunked;
          Alcotest.test_case "errno wire codes total and injective" `Quick
            test_errno_wire_total;
          Alcotest.test_case "random garbage never raises" `Quick test_decode_garbage;
          Alcotest.test_case "corr id across protocol versions" `Quick
            test_wire_corr_versioning;
        ] );
      ( "session",
        [
          Alcotest.test_case "unknown vfd is EBADF" `Quick test_session_translate_ebadf;
          Alcotest.test_case "bind/translate/release" `Quick test_session_fd_binding;
          Alcotest.test_case "descriptor quota EMFILE" `Quick test_session_fd_quota;
          Alcotest.test_case "inflight quota refuses" `Quick test_session_inflight_quota;
        ] );
      ( "server",
        [
          Alcotest.test_case "bad hello rejected" `Quick test_server_bad_hello;
          Alcotest.test_case "op before hello drops" `Quick test_server_op_before_hello;
          Alcotest.test_case "corrupt stream drops" `Quick test_server_corrupt_stream_drops;
          Alcotest.test_case "backpressure answers Busy" `Quick test_server_backpressure;
          Alcotest.test_case "round-robin fairness" `Quick test_server_fairness;
          Alcotest.test_case "idle sessions evicted" `Quick test_server_idle_eviction;
        ] );
      ( "serving",
        [
          Alcotest.test_case "recovery transparency, 4 sessions" `Quick
            test_recovery_transparency;
          Alcotest.test_case "reconnect re-validates fds" `Quick
            test_reconnect_revalidates_fds;
          Alcotest.test_case "detach then EIO" `Quick test_client_detach_then_eio;
          Alcotest.test_case "metrics/bundle verbs over the wire" `Quick test_obs_verbs;
          Alcotest.test_case "bundle names impacted sessions by corr id" `Quick
            test_bundle_names_impacted_sessions;
        ] );
    ]
