(* Tests for rae_specfs: the executable specification's POSIX-subset
   semantics.  These tests define the contract that the base and shadow
   filesystems are later property-tested against. *)

open Rae_vfs
module Spec = Rae_specfs.Spec

let p = Path.parse_exn

let errno = Alcotest.testable Errno.pp Errno.equal
let ino_r = Alcotest.(result int errno)
let unit_r = Alcotest.(result unit errno)
let fd_r = Alcotest.(result int errno)
let str_r = Alcotest.(result string errno)
let names_r = Alcotest.(result (list string) errno)

let ok = Result.get_ok

let fs () = Spec.make ()

(* ---- create / mkdir ---- *)

let test_create_basic () =
  let t = fs () in
  Alcotest.check ino_r "first file gets ino 2" (Ok 2) (Spec.create t (p "/a") ~mode:0o644);
  Alcotest.check ino_r "second ino 3" (Ok 3) (Spec.create t (p "/b") ~mode:0o600);
  Alcotest.check ino_r "duplicate" (Error Errno.EEXIST) (Spec.create t (p "/a") ~mode:0o644);
  Alcotest.check ino_r "missing parent" (Error Errno.ENOENT) (Spec.create t (p "/no/x") ~mode:0o644);
  Alcotest.check ino_r "root" (Error Errno.EEXIST) (Spec.create t (p "/") ~mode:0o644);
  Alcotest.check ino_r "bad mode" (Error Errno.EINVAL) (Spec.create t (p "/c") ~mode:0o7777)

let test_create_under_file () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  Alcotest.check ino_r "file as parent" (Error Errno.ENOTDIR) (Spec.create t (p "/f/x") ~mode:0o644)

let test_mkdir_and_nlink () =
  let t = fs () in
  ignore (ok (Spec.mkdir t (p "/d") ~mode:0o755));
  let root = ok (Spec.stat t (p "/")) in
  Alcotest.(check int) "root nlink 3 after subdir" 3 root.Types.st_nlink;
  let d = ok (Spec.stat t (p "/d")) in
  Alcotest.(check int) "fresh dir nlink 2" 2 d.Types.st_nlink;
  ignore (ok (Spec.mkdir t (p "/d/e") ~mode:0o755));
  let d = ok (Spec.stat t (p "/d")) in
  Alcotest.(check int) "dir nlink 3 with subdir" 3 d.Types.st_nlink

(* ---- lowest-free allocation ---- *)

let test_ino_reuse_lowest_free () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/a") ~mode:0o644)) (* ino 2 *);
  ignore (ok (Spec.create t (p "/b") ~mode:0o644)) (* ino 3 *);
  ignore (ok (Spec.create t (p "/c") ~mode:0o644)) (* ino 4 *);
  ignore (ok (Spec.unlink t (p "/b")));
  Alcotest.check ino_r "freed ino reused" (Ok 3) (Spec.create t (p "/d") ~mode:0o644)

let test_fd_lowest_free () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  let fd0 = ok (Spec.openf t (p "/f") Types.flags_ro) in
  let fd1 = ok (Spec.openf t (p "/f") Types.flags_ro) in
  let fd2 = ok (Spec.openf t (p "/f") Types.flags_ro) in
  Alcotest.(check (list int)) "sequential" [ 0; 1; 2 ] [ fd0; fd1; fd2 ];
  ignore (ok (Spec.close t fd1));
  Alcotest.check fd_r "lowest free reused" (Ok 1) (Spec.openf t (p "/f") Types.flags_ro)

(* ---- unlink / rmdir ---- *)

let test_unlink () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  Alcotest.check unit_r "unlink" (Ok ()) (Spec.unlink t (p "/f"));
  Alcotest.check ino_r "gone" (Error Errno.ENOENT) (Spec.lookup t (p "/f"));
  Alcotest.check unit_r "again" (Error Errno.ENOENT) (Spec.unlink t (p "/f"));
  ignore (ok (Spec.mkdir t (p "/d") ~mode:0o755));
  Alcotest.check unit_r "unlink dir" (Error Errno.EISDIR) (Spec.unlink t (p "/d"));
  Alcotest.check unit_r "unlink root" (Error Errno.EISDIR) (Spec.unlink t (p "/"))

let test_rmdir () =
  let t = fs () in
  ignore (ok (Spec.mkdir t (p "/d") ~mode:0o755));
  ignore (ok (Spec.create t (p "/d/f") ~mode:0o644));
  Alcotest.check unit_r "not empty" (Error Errno.ENOTEMPTY) (Spec.rmdir t (p "/d"));
  ignore (ok (Spec.unlink t (p "/d/f")));
  Alcotest.check unit_r "now empty" (Ok ()) (Spec.rmdir t (p "/d"));
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  Alcotest.check unit_r "rmdir a file" (Error Errno.ENOTDIR) (Spec.rmdir t (p "/f"));
  Alcotest.check unit_r "rmdir root" (Error Errno.EINVAL) (Spec.rmdir t (p "/"));
  let root = ok (Spec.stat t (p "/")) in
  Alcotest.(check int) "root nlink back to 2" 2 root.Types.st_nlink

(* ---- orphan semantics ---- *)

let test_unlink_while_open () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  let fd = ok (Spec.openf t (p "/f") Types.flags_rw) in
  ignore (ok (Spec.pwrite t fd ~off:0 "keepme"));
  ignore (ok (Spec.unlink t (p "/f")));
  Alcotest.check ino_r "name gone" (Error Errno.ENOENT) (Spec.lookup t (p "/f"));
  Alcotest.check str_r "data still readable via fd" (Ok "keepme") (Spec.pread t fd ~off:0 ~len:10);
  let st = ok (Spec.fstat t fd) in
  Alcotest.(check int) "nlink 0" 0 st.Types.st_nlink;
  Alcotest.check unit_r "close reclaims" (Ok ()) (Spec.close t fd);
  (* The inode is free again: a new file gets it. *)
  Alcotest.check ino_r "ino reused after reclaim" (Ok st.Types.st_ino)
    (Spec.create t (p "/g") ~mode:0o644)

let test_orphan_with_two_fds () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  let fd1 = ok (Spec.openf t (p "/f") Types.flags_rw) in
  let fd2 = ok (Spec.openf t (p "/f") Types.flags_ro) in
  ignore (ok (Spec.pwrite t fd1 ~off:0 "x"));
  ignore (ok (Spec.unlink t (p "/f")));
  ignore (ok (Spec.close t fd1));
  Alcotest.check str_r "still alive via fd2" (Ok "x") (Spec.pread t fd2 ~off:0 ~len:1);
  ignore (ok (Spec.close t fd2))

(* ---- open flags ---- *)

let test_open_flags () =
  let t = fs () in
  Alcotest.check fd_r "no flags" (Error Errno.EINVAL)
    (Spec.openf t (p "/f") { Types.rd = false; wr = false; creat = false; excl = false; trunc = false; append = false });
  Alcotest.check fd_r "trunc without wr" (Error Errno.EINVAL)
    (Spec.openf t (p "/f") { Types.flags_ro with trunc = true });
  Alcotest.check fd_r "excl without creat" (Error Errno.EINVAL)
    (Spec.openf t (p "/f") { Types.flags_ro with excl = true });
  Alcotest.check fd_r "missing, no creat" (Error Errno.ENOENT) (Spec.openf t (p "/f") Types.flags_ro);
  let fd = ok (Spec.openf t (p "/f") Types.flags_create) in
  ignore (ok (Spec.pwrite t fd ~off:0 "hello"));
  ignore (ok (Spec.close t fd));
  Alcotest.check fd_r "excl on existing" (Error Errno.EEXIST) (Spec.openf t (p "/f") Types.flags_excl);
  let fd = ok (Spec.openf t (p "/f") Types.flags_trunc) in
  Alcotest.(check int) "truncated" 0 (ok (Spec.fstat t fd)).Types.st_size;
  ignore (ok (Spec.close t fd));
  ignore (ok (Spec.mkdir t (p "/d") ~mode:0o755));
  Alcotest.check fd_r "open dir" (Error Errno.EISDIR) (Spec.openf t (p "/d") Types.flags_ro)

let test_open_append () =
  let t = fs () in
  let fd = ok (Spec.openf t (p "/log") Types.flags_create) in
  ignore (ok (Spec.pwrite t fd ~off:0 "aaa"));
  ignore (ok (Spec.close t fd));
  let fd = ok (Spec.openf t (p "/log") Types.flags_append) in
  ignore (ok (Spec.pwrite t fd ~off:0 "bbb")) (* offset ignored with append *);
  ignore (ok (Spec.close t fd));
  let fd = ok (Spec.openf t (p "/log") Types.flags_ro) in
  Alcotest.check str_r "appended" (Ok "aaabbb") (Spec.pread t fd ~off:0 ~len:10);
  ignore (ok (Spec.close t fd))

let test_fd_limit () =
  let t = Spec.make ~max_fds:2 () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  ignore (ok (Spec.openf t (p "/f") Types.flags_ro));
  ignore (ok (Spec.openf t (p "/f") Types.flags_ro));
  Alcotest.check fd_r "limit" (Error Errno.EMFILE) (Spec.openf t (p "/f") Types.flags_ro)

(* ---- read / write ---- *)

let test_pread_pwrite () =
  let t = fs () in
  let fd = ok (Spec.openf t (p "/f") Types.flags_create) in
  Alcotest.check (Alcotest.result Alcotest.int errno) "write 5" (Ok 5) (Spec.pwrite t fd ~off:0 "hello");
  Alcotest.check str_r "read back" (Ok "hello") (Spec.pread t fd ~off:0 ~len:5);
  Alcotest.check str_r "short read at EOF" (Ok "llo") (Spec.pread t fd ~off:2 ~len:100);
  Alcotest.check str_r "read past EOF" (Ok "") (Spec.pread t fd ~off:100 ~len:4);
  (* Sparse write: hole filled with zeros. *)
  ignore (ok (Spec.pwrite t fd ~off:8 "end"));
  Alcotest.check str_r "hole zero-filled" (Ok "hello\000\000\000end") (Spec.pread t fd ~off:0 ~len:100);
  Alcotest.check (Alcotest.result Alcotest.int errno) "zero-length write" (Ok 0)
    (Spec.pwrite t fd ~off:0 "");
  Alcotest.check str_r "negative offset" (Error Errno.EINVAL) (Spec.pread t fd ~off:(-1) ~len:1);
  ignore (ok (Spec.close t fd));
  Alcotest.check str_r "closed fd" (Error Errno.EBADF) (Spec.pread t fd ~off:0 ~len:1)

let test_rw_permissions () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  let fd_ro = ok (Spec.openf t (p "/f") Types.flags_ro) in
  Alcotest.check (Alcotest.result Alcotest.int errno) "write on ro fd" (Error Errno.EBADF)
    (Spec.pwrite t fd_ro ~off:0 "x");
  ignore (ok (Spec.close t fd_ro));
  let fd_wo =
    ok (Spec.openf t (p "/f") { Types.flags_rw with rd = false })
  in
  Alcotest.check str_r "read on wo fd" (Error Errno.EBADF) (Spec.pread t fd_wo ~off:0 ~len:1);
  ignore (ok (Spec.close t fd_wo))

let test_efbig () =
  let t = Spec.make ~max_file_size:100 () in
  let fd = ok (Spec.openf t (p "/f") Types.flags_create) in
  Alcotest.check (Alcotest.result Alcotest.int errno) "write past limit" (Error Errno.EFBIG)
    (Spec.pwrite t fd ~off:90 (String.make 20 'x'));
  Alcotest.check unit_r "truncate past limit" (Error Errno.EFBIG) (Spec.truncate t (p "/f") ~size:101)

(* ---- rename ---- *)

let test_rename_basic () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/a") ~mode:0o644));
  Alcotest.check unit_r "rename" (Ok ()) (Spec.rename t (p "/a") (p "/b"));
  Alcotest.check ino_r "old gone" (Error Errno.ENOENT) (Spec.lookup t (p "/a"));
  Alcotest.check ino_r "new there" (Ok 2) (Spec.lookup t (p "/b"));
  Alcotest.check unit_r "missing src" (Error Errno.ENOENT) (Spec.rename t (p "/zz") (p "/yy"))

let test_rename_replace_file () =
  let t = fs () in
  let fd = ok (Spec.openf t (p "/a") Types.flags_create) in
  ignore (ok (Spec.pwrite t fd ~off:0 "AAA"));
  ignore (ok (Spec.close t fd));
  ignore (ok (Spec.create t (p "/b") ~mode:0o644));
  Alcotest.check unit_r "replace" (Ok ()) (Spec.rename t (p "/a") (p "/b"));
  let fd = ok (Spec.openf t (p "/b") Types.flags_ro) in
  Alcotest.check str_r "content moved" (Ok "AAA") (Spec.pread t fd ~off:0 ~len:3);
  ignore (ok (Spec.close t fd))

let test_rename_dirs () =
  let t = fs () in
  ignore (ok (Spec.mkdir t (p "/d1") ~mode:0o755));
  ignore (ok (Spec.mkdir t (p "/d2") ~mode:0o755));
  ignore (ok (Spec.create t (p "/d1/f") ~mode:0o644));
  (* dir onto non-empty dir *)
  ignore (ok (Spec.mkdir t (p "/d2/sub") ~mode:0o755));
  Alcotest.check unit_r "onto non-empty" (Error Errno.ENOTEMPTY) (Spec.rename t (p "/d1") (p "/d2"));
  ignore (ok (Spec.rmdir t (p "/d2/sub")));
  Alcotest.check unit_r "onto empty dir" (Ok ()) (Spec.rename t (p "/d1") (p "/d2"));
  Alcotest.check names_r "moved content" (Ok [ "f" ]) (Spec.readdir t (p "/d2"));
  (* into own subtree *)
  ignore (ok (Spec.mkdir t (p "/d2/inner") ~mode:0o755));
  Alcotest.check unit_r "into own subtree" (Error Errno.EINVAL)
    (Spec.rename t (p "/d2") (p "/d2/inner/x"));
  (* file onto dir / dir onto file *)
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  Alcotest.check unit_r "file onto dir" (Error Errno.EISDIR) (Spec.rename t (p "/f") (p "/d2"));
  Alcotest.check unit_r "dir onto file" (Error Errno.ENOTDIR) (Spec.rename t (p "/d2") (p "/f"))

let test_rename_nlink_accounting () =
  let t = fs () in
  ignore (ok (Spec.mkdir t (p "/src") ~mode:0o755));
  ignore (ok (Spec.mkdir t (p "/dst") ~mode:0o755));
  ignore (ok (Spec.mkdir t (p "/src/mover") ~mode:0o755));
  ignore (ok (Spec.rename t (p "/src/mover") (p "/dst/mover")));
  Alcotest.(check int) "src loses subdir" 2 (ok (Spec.stat t (p "/src"))).Types.st_nlink;
  Alcotest.(check int) "dst gains subdir" 3 (ok (Spec.stat t (p "/dst"))).Types.st_nlink

let test_rename_same_and_hardlink () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/a") ~mode:0o644));
  Alcotest.check unit_r "same path no-op" (Ok ()) (Spec.rename t (p "/a") (p "/a"));
  ignore (ok (Spec.link t (p "/a") (p "/b")));
  Alcotest.check unit_r "onto own hard link no-op" (Ok ()) (Spec.rename t (p "/a") (p "/b"));
  Alcotest.check ino_r "a still there (POSIX)" (Ok 2) (Spec.lookup t (p "/a"));
  Alcotest.check ino_r "b still there" (Ok 2) (Spec.lookup t (p "/b"))

(* ---- link / symlink ---- *)

let test_hard_link () =
  let t = fs () in
  let fd = ok (Spec.openf t (p "/a") Types.flags_create) in
  ignore (ok (Spec.pwrite t fd ~off:0 "shared"));
  ignore (ok (Spec.close t fd));
  Alcotest.check unit_r "link" (Ok ()) (Spec.link t (p "/a") (p "/b"));
  Alcotest.(check int) "nlink 2" 2 (ok (Spec.stat t (p "/a"))).Types.st_nlink;
  Alcotest.(check int) "same ino" (ok (Spec.stat t (p "/a"))).Types.st_ino
    (ok (Spec.stat t (p "/b"))).Types.st_ino;
  ignore (ok (Spec.unlink t (p "/a")));
  let fd = ok (Spec.openf t (p "/b") Types.flags_ro) in
  Alcotest.check str_r "survives via other link" (Ok "shared") (Spec.pread t fd ~off:0 ~len:6);
  ignore (ok (Spec.close t fd));
  ignore (ok (Spec.mkdir t (p "/d") ~mode:0o755));
  Alcotest.check unit_r "link dir" (Error Errno.EISDIR) (Spec.link t (p "/d") (p "/d2"));
  Alcotest.check unit_r "existing dst" (Error Errno.EEXIST) (Spec.link t (p "/b") (p "/b"))

let test_symlink_follow () =
  let t = fs () in
  ignore (ok (Spec.mkdir t (p "/dir") ~mode:0o755));
  ignore (ok (Spec.create t (p "/dir/target") ~mode:0o644));
  ignore (ok (Spec.symlink t ~target:"/dir" (p "/ln")));
  Alcotest.check ino_r "lookup through symlink" (Spec.lookup t (p "/dir/target"))
    (Spec.lookup t (p "/ln/target"));
  Alcotest.check str_r "readlink" (Ok "/dir") (Spec.readlink t (p "/ln"));
  Alcotest.check str_r "readlink on file" (Error Errno.EINVAL) (Spec.readlink t (p "/dir/target"));
  (* stat follows *)
  let st = ok (Spec.stat t (p "/ln")) in
  Alcotest.(check bool) "stat follows to dir" true (st.Types.st_kind = Types.Directory)

let test_symlink_loops () =
  let t = fs () in
  ignore (ok (Spec.symlink t ~target:"/b" (p "/a")));
  ignore (ok (Spec.symlink t ~target:"/a" (p "/b")));
  Alcotest.check ino_r "loop" (Error Errno.ELOOP) (Spec.lookup t (p "/a"));
  ignore (ok (Spec.symlink t ~target:"relative" (p "/rel")));
  Alcotest.check ino_r "non-absolute target" (Error Errno.ENOENT) (Spec.lookup t (p "/rel"))

let test_symlink_dangling () =
  let t = fs () in
  ignore (ok (Spec.symlink t ~target:"/nowhere" (p "/dang")));
  Alcotest.check ino_r "dangling" (Error Errno.ENOENT) (Spec.lookup t (p "/dang"));
  (* unlink does not follow *)
  Alcotest.check unit_r "unlink the link itself" (Ok ()) (Spec.unlink t (p "/dang"))

let test_symlink_validation () =
  let t = fs () in
  Alcotest.check ino_r "empty target" (Error Errno.ENOENT) (Spec.symlink t ~target:"" (p "/l"));
  Alcotest.check ino_r "overlong target" (Error Errno.ENAMETOOLONG)
    (Spec.symlink t ~target:(String.make 5000 'x') (p "/l"))

(* ---- stat / readdir / chmod / truncate ---- *)

let test_stat_fields () =
  let t = fs () in
  let fd = ok (Spec.openf t (p "/f") Types.flags_create) in
  ignore (ok (Spec.pwrite t fd ~off:0 "12345"));
  ignore (ok (Spec.close t fd));
  let st = ok (Spec.stat t (p "/f")) in
  Alcotest.(check int) "size" 5 st.Types.st_size;
  Alcotest.(check int) "mode (open creat default)" 0o644 st.Types.st_mode;
  Alcotest.(check bool) "regular" true (st.Types.st_kind = Types.Regular);
  let dst = ok (Spec.stat t (p "/")) in
  Alcotest.(check int) "dir size 0 by convention" 0 dst.Types.st_size

let test_readdir_sorted () =
  let t = fs () in
  List.iter (fun n -> ignore (ok (Spec.create t (p ("/" ^ n)) ~mode:0o644))) [ "zeta"; "alpha"; "mid" ];
  Alcotest.check names_r "sorted" (Ok [ "alpha"; "mid"; "zeta" ]) (Spec.readdir t (p "/"));
  Alcotest.check names_r "on file" (Error Errno.ENOTDIR) (Spec.readdir t (p "/alpha"))

let test_chmod () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  Alcotest.check unit_r "chmod" (Ok ()) (Spec.chmod t (p "/f") ~mode:0o400);
  Alcotest.(check int) "mode applied" 0o400 (ok (Spec.stat t (p "/f"))).Types.st_mode;
  Alcotest.check unit_r "bad mode" (Error Errno.EINVAL) (Spec.chmod t (p "/f") ~mode:0o1777)

let test_truncate () =
  let t = fs () in
  let fd = ok (Spec.openf t (p "/f") Types.flags_create) in
  ignore (ok (Spec.pwrite t fd ~off:0 "abcdef"));
  Alcotest.check unit_r "shrink" (Ok ()) (Spec.truncate t (p "/f") ~size:3);
  Alcotest.check str_r "shrunk" (Ok "abc") (Spec.pread t fd ~off:0 ~len:10);
  Alcotest.check unit_r "grow" (Ok ()) (Spec.truncate t (p "/f") ~size:5);
  Alcotest.check str_r "zero-extended" (Ok "abc\000\000") (Spec.pread t fd ~off:0 ~len:10);
  Alcotest.check unit_r "negative" (Error Errno.EINVAL) (Spec.truncate t (p "/f") ~size:(-1));
  ignore (ok (Spec.close t fd));
  ignore (ok (Spec.mkdir t (p "/d") ~mode:0o755));
  Alcotest.check unit_r "truncate dir" (Error Errno.EISDIR) (Spec.truncate t (p "/d") ~size:0)

(* ---- logical time ---- *)

let test_time_ticks_on_mutations_only () =
  let t = fs () in
  Alcotest.(check int64) "starts 0" 0L (Spec.time t);
  ignore (ok (Spec.create t (p "/f") ~mode:0o644));
  Alcotest.(check int64) "create ticks" 1L (Spec.time t);
  ignore (ok (Spec.stat t (p "/f")));
  ignore (ok (Spec.lookup t (p "/f")));
  ignore (ok (Spec.readdir t (p "/")));
  Alcotest.(check int64) "reads do not tick" 1L (Spec.time t);
  ignore (Spec.create t (p "/f") ~mode:0o644) (* EEXIST *);
  Alcotest.(check int64) "failed ops do not tick" 1L (Spec.time t);
  let fd = ok (Spec.openf t (p "/f") Types.flags_ro) in
  Alcotest.(check int64) "plain open does not tick" 1L (Spec.time t);
  ignore (ok (Spec.close t fd));
  Alcotest.(check int64) "close does not tick" 1L (Spec.time t);
  let fd = ok (Spec.openf t (p "/f2") Types.flags_create) in
  Alcotest.(check int64) "creating open ticks" 2L (Spec.time t);
  ignore (ok (Spec.pwrite t fd ~off:0 "x"));
  Alcotest.(check int64) "write ticks" 3L (Spec.time t);
  ignore (ok (Spec.pwrite t fd ~off:0 ""));
  Alcotest.(check int64) "empty write does not tick" 3L (Spec.time t);
  ignore (ok (Spec.close t fd))

let test_mtime_stamps () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/a") ~mode:0o644)) (* t=1 *);
  ignore (ok (Spec.create t (p "/b") ~mode:0o644)) (* t=2 *);
  Alcotest.(check int64) "a stamped 1" 1L (ok (Spec.stat t (p "/a"))).Types.st_mtime;
  Alcotest.(check int64) "b stamped 2" 2L (ok (Spec.stat t (p "/b"))).Types.st_mtime;
  Alcotest.(check int64) "root mtime = latest child mutation" 2L
    (ok (Spec.stat t (p "/"))).Types.st_mtime

(* ---- snapshots ---- *)

let test_snapshot_equal_diff () =
  let build () =
    let t = fs () in
    ignore (ok (Spec.mkdir t (p "/d") ~mode:0o755));
    let fd = ok (Spec.openf t (p "/d/f") Types.flags_create) in
    ignore (ok (Spec.pwrite t fd ~off:0 "data"));
    t
  in
  let a = build () and b = build () in
  Alcotest.(check bool) "identical histories equal" true
    (Spec.State.equal (Spec.snapshot a) (Spec.snapshot b));
  Alcotest.(check (list string)) "no diff" [] (Spec.State.diff (Spec.snapshot a) (Spec.snapshot b));
  ignore (ok (Spec.create b (p "/extra") ~mode:0o644));
  Alcotest.(check bool) "divergence detected" false
    (Spec.State.equal (Spec.snapshot a) (Spec.snapshot b));
  Alcotest.(check bool) "diff names the path" true
    (List.exists (fun s -> String.length s > 0) (Spec.State.diff (Spec.snapshot a) (Spec.snapshot b)))

let test_snapshot_orphans_and_fds () =
  let t = fs () in
  let fd = ok (Spec.openf t (p "/f") Types.flags_create) in
  ignore (ok (Spec.unlink t (p "/f")));
  let snap = Spec.snapshot t in
  Alcotest.(check bool) "orphan listed" true
    (List.exists (fun e -> String.length e.Spec.State.e_path > 7 && String.sub e.Spec.State.e_path 0 7 = "!orphan") snap.Spec.State.entries);
  Alcotest.(check int) "fd listed" 1 (List.length snap.Spec.State.fds);
  ignore (ok (Spec.close t fd))

let test_copy_independent () =
  let t = fs () in
  ignore (ok (Spec.create t (p "/a") ~mode:0o644));
  let t2 = Spec.copy t in
  ignore (ok (Spec.create t2 (p "/b") ~mode:0o644));
  Alcotest.check ino_r "original unaffected" (Error Errno.ENOENT) (Spec.lookup t (p "/b"));
  Alcotest.check ino_r "copy has it" (Ok 3) (Spec.lookup t2 (p "/b"))

(* ---- failed operations leave no trace ---- *)

let prop_failed_ops_pure =
  (* Any op that returns Error must leave the snapshot unchanged. *)
  let open QCheck2.Gen in
  let gen_op =
    oneof
      [
        return (Op.Create (p "/exists", 0o644));
        return (Op.Mkdir (p "/exists", 0o755));
        return (Op.Unlink (p "/missing"));
        return (Op.Rmdir (p "/nonempty"));
        return (Op.Rename (p "/missing", p "/x"));
        return (Op.Truncate (p "/missing", 3));
        return (Op.Pwrite (99, 0, "x"));
        return (Op.Close 99);
        return (Op.Chmod (p "/missing", 0o600));
        return (Op.Link (p "/nonempty", p "/y"));
        return (Op.Readlink (p "/exists"));
      ]
  in
  QCheck2.Test.make ~name:"failed ops leave state unchanged" ~count:100
    (list_size (int_range 1 10) gen_op)
    (fun ops ->
      let t = fs () in
      ignore (ok (Spec.create t (p "/exists") ~mode:0o644));
      ignore (ok (Spec.mkdir t (p "/nonempty") ~mode:0o755));
      ignore (ok (Spec.create t (p "/nonempty/f") ~mode:0o644));
      let before = Spec.snapshot t in
      List.for_all
        (fun op ->
          match Spec.exec t op with
          | Error _ -> Spec.State.equal before (Spec.snapshot t)
          | Ok _ -> true)
        ops)

(* ---- chunked contents ≡ flat string model ---- *)

module Chunked = Rae_specfs.Chunked

(* The reference model: file contents as one flat string, writes splice,
   gaps zero-fill — exactly what [Spec] used before chunking. *)
let model_write s ~off data =
  let len = String.length data in
  if len = 0 then s
  else begin
    let n = max (String.length s) (off + len) in
    let b = Bytes.make n '\000' in
    Bytes.blit_string s 0 b 0 (String.length s);
    Bytes.blit_string data 0 b off len;
    Bytes.unsafe_to_string b
  end

let model_truncate s n =
  if n <= String.length s then String.sub s 0 n
  else s ^ String.make (n - String.length s) '\000'

let model_read s ~off ~len =
  if off >= String.length s || len = 0 then ""
  else String.sub s off (min len (String.length s - off))

let prop_chunked_equals_string =
  let open QCheck2.Gen in
  let cs = Chunked.chunk_size in
  (* Offsets and lengths hug the chunk seams: exact multiples +/- a couple
     of bytes, where a splice bug would live. *)
  let boundary = map2 (fun c d -> max 0 ((c * cs) + d)) (int_range 0 3) (int_range (-2) 2) in
  let action =
    oneof
      [
        map2 (fun off len -> `Write (off, len)) boundary (int_range 0 ((2 * cs) + 3));
        map (fun n -> `Truncate n) boundary;
      ]
  in
  QCheck2.Test.make ~name:"chunked contents == string model" ~count:150
    (list_size (int_range 1 12) action)
    (fun actions ->
      let fill = "abcdefghijklmnopqrstuvwxyz0123456789" in
      let payload len salt = String.init len (fun i -> fill.[(i + salt) mod String.length fill]) in
      let _, c, s =
        List.fold_left
          (fun (i, c, s) -> function
            | `Write (off, len) ->
                let d = payload len i in
                (i + 1, Chunked.write c ~off d, model_write s ~off d)
            | `Truncate n -> (i + 1, Chunked.truncate c n, model_truncate s n))
          (0, Chunked.empty, "") actions
      in
      Chunked.length c = String.length s
      && String.equal (Chunked.to_string c) s
      && List.for_all
           (fun off ->
             List.for_all
               (fun len -> String.equal (Chunked.read c ~off ~len) (model_read s ~off ~len))
               [ 0; 1; cs - 1; cs; cs + 1 ])
           [ 0; 1; cs - 1; cs; cs + 1; 2 * cs ])

let test_pwrite_chunk_boundaries () =
  (* The same seams through the public [Spec] API. *)
  let cs = Chunked.chunk_size in
  let t = fs () in
  let fd = ok (Spec.openf t (p "/f") Types.flags_create) in
  (* Straddle the first seam; the hole before it reads as zeros. *)
  Alcotest.(check int) "straddling write" 3 (ok (Spec.pwrite t fd ~off:(cs - 1) "XYZ"));
  Alcotest.check str_r "straddling read" (Ok "XYZ") (Spec.pread t fd ~off:(cs - 1) ~len:3);
  Alcotest.(check int) "size" (cs + 2) (ok (Spec.fstat t fd)).Types.st_size;
  Alcotest.check str_r "hole zeros" (Ok (String.make 5 '\000')) (Spec.pread t fd ~off:100 ~len:5);
  (* Overwrite exactly one aligned chunk; neighbours stay intact. *)
  Alcotest.(check int) "aligned write" cs (ok (Spec.pwrite t fd ~off:cs (String.make cs 'A')));
  Alcotest.check str_r "left neighbour intact" (Ok "X") (Spec.pread t fd ~off:(cs - 1) ~len:1);
  Alcotest.check str_r "chunk head" (Ok "AA") (Spec.pread t fd ~off:cs ~len:2);
  (* Truncate mid-chunk, then extend: the cut tail must re-read as zeros. *)
  ignore (ok (Spec.close t fd));
  ignore (ok (Spec.truncate t (p "/f") ~size:(cs + 10)));
  ignore (ok (Spec.truncate t (p "/f") ~size:(cs + 100)));
  let fd = ok (Spec.openf t (p "/f") Types.flags_ro) in
  Alcotest.check str_r "cut tail zeroed" (Ok (String.make 90 '\000'))
    (Spec.pread t fd ~off:(cs + 10) ~len:90);
  Alcotest.check str_r "survivors intact" (Ok ("X" ^ String.make 9 'A'))
    (Spec.pread t fd ~off:(cs - 1) ~len:10);
  ignore (ok (Spec.close t fd))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_specfs"
    [
      ( "namespace",
        [
          Alcotest.test_case "create basics" `Quick test_create_basic;
          Alcotest.test_case "create under file" `Quick test_create_under_file;
          Alcotest.test_case "mkdir and nlink" `Quick test_mkdir_and_nlink;
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "ino lowest-free" `Quick test_ino_reuse_lowest_free;
          Alcotest.test_case "fd lowest-free" `Quick test_fd_lowest_free;
        ] );
      ( "orphans",
        [
          Alcotest.test_case "unlink while open" `Quick test_unlink_while_open;
          Alcotest.test_case "two descriptors" `Quick test_orphan_with_two_fds;
        ] );
      ( "open",
        [
          Alcotest.test_case "flag combinations" `Quick test_open_flags;
          Alcotest.test_case "append" `Quick test_open_append;
          Alcotest.test_case "fd limit" `Quick test_fd_limit;
        ] );
      ( "io",
        [
          Alcotest.test_case "pread/pwrite" `Quick test_pread_pwrite;
          Alcotest.test_case "permissions" `Quick test_rw_permissions;
          Alcotest.test_case "EFBIG" `Quick test_efbig;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "chunk boundaries" `Quick test_pwrite_chunk_boundaries;
          q prop_chunked_equals_string;
        ] );
      ( "rename",
        [
          Alcotest.test_case "basic" `Quick test_rename_basic;
          Alcotest.test_case "replace file" `Quick test_rename_replace_file;
          Alcotest.test_case "directories" `Quick test_rename_dirs;
          Alcotest.test_case "nlink accounting" `Quick test_rename_nlink_accounting;
          Alcotest.test_case "same path / hardlink" `Quick test_rename_same_and_hardlink;
        ] );
      ( "links",
        [
          Alcotest.test_case "hard links" `Quick test_hard_link;
          Alcotest.test_case "symlink follow" `Quick test_symlink_follow;
          Alcotest.test_case "symlink loops" `Quick test_symlink_loops;
          Alcotest.test_case "dangling symlink" `Quick test_symlink_dangling;
          Alcotest.test_case "symlink validation" `Quick test_symlink_validation;
        ] );
      ( "attrs",
        [
          Alcotest.test_case "stat fields" `Quick test_stat_fields;
          Alcotest.test_case "readdir sorted" `Quick test_readdir_sorted;
          Alcotest.test_case "chmod" `Quick test_chmod;
        ] );
      ( "time",
        [
          Alcotest.test_case "ticks on mutations only" `Quick test_time_ticks_on_mutations_only;
          Alcotest.test_case "mtime stamps" `Quick test_mtime_stamps;
        ] );
      ( "state",
        [
          Alcotest.test_case "snapshot equal/diff" `Quick test_snapshot_equal_diff;
          Alcotest.test_case "orphans and fds in snapshot" `Quick test_snapshot_orphans_and_fds;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          q prop_failed_ops_pure;
        ] );
    ]
