(* Tests for rae_basefs: smoke, spec-equivalence, caching, persistence,
   crash consistency, trusting-fast-path crashes and injected bugs. *)

open Rae_vfs
module Base = Rae_basefs.Base
module Detector = Rae_basefs.Detector
module Bug_registry = Rae_basefs.Bug_registry
module Spec = Rae_specfs.Spec
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Layout = Rae_format.Layout
module Fsck = Rae_fsck.Fsck

let p = Path.parse_exn
let bs = Layout.block_size
let ok = Result.get_ok

let mk_disk ?(nblocks = 2048) () =
  Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks ()

let mk_base ?config ?bugs ?(nblocks = 2048) ?(ninodes = 256) () =
  let disk = mk_disk ~nblocks () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes ()));
  (disk, dev, ok (Base.mount ?config ?bugs dev))

(* ---- smoke ---- *)

let test_mkfs_mount_smoke () =
  let _disk, _dev, b = mk_base () in
  ignore (ok (Base.mkdir b (p "/home") ~mode:0o755));
  let fd = ok (Base.openf b (p "/home/doc") Types.flags_create) in
  Alcotest.(check int) "write" 5 (ok (Base.pwrite b fd ~off:0 "hello"));
  Alcotest.(check string) "read" "hello" (ok (Base.pread b fd ~off:0 ~len:100));
  ignore (ok (Base.close b fd));
  Alcotest.(check (list string)) "readdir" [ "doc" ] (ok (Base.readdir b (p "/home")))

let test_mount_unformatted () =
  let disk = mk_disk () in
  match Base.mount (Device.of_disk disk) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mounted an unformatted device"

let test_persistence_across_remount () =
  let disk = mk_disk () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:256 ()));
  let b = ok (Base.mount dev) in
  ignore (ok (Base.mkdir b (p "/d") ~mode:0o700));
  let fd = ok (Base.openf b (p "/d/f") Types.flags_create) in
  ignore (ok (Base.pwrite b fd ~off:0 "persistent data"));
  ignore (ok (Base.close b fd));
  ignore (ok (Base.unmount b));
  (* Fresh mount sees everything. *)
  let b2 = ok (Base.mount dev) in
  Alcotest.(check (list string)) "dir" [ "f" ] (ok (Base.readdir b2 (p "/d")));
  let fd = ok (Base.openf b2 (p "/d/f") Types.flags_ro) in
  Alcotest.(check string) "data" "persistent data" (ok (Base.pread b2 fd ~off:0 ~len:100));
  ignore (ok (Base.close b2 fd));
  let st = ok (Base.stat b2 (p "/d")) in
  Alcotest.(check int) "mode survives" 0o700 st.Types.st_mode;
  (* And the image passes fsck. *)
  ignore (ok (Base.unmount b2));
  Alcotest.(check bool) "fsck clean" true (Fsck.clean (Fsck.check_device dev))

let test_group_commit_interval () =
  let _disk, _dev, b =
    mk_base ~config:{ Base.default_config with Base.commit_interval = 4 } ()
  in
  ignore (ok (Base.create b (p "/f1") ~mode:0o644));
  ignore (ok (Base.create b (p "/f2") ~mode:0o644));
  ignore (ok (Base.create b (p "/f3") ~mode:0o644));
  Alcotest.(check int) "no commit yet" 0 (Base.stats b).Base.commits;
  Alcotest.(check int) "3 ops pending" 3 (Base.ops_since_commit b);
  ignore (ok (Base.create b (p "/f4") ~mode:0o644));
  Alcotest.(check int) "interval commit" 1 (Base.stats b).Base.commits;
  Alcotest.(check int) "window reset" 0 (Base.ops_since_commit b)

let test_fsync_forces_commit () =
  let _disk, _dev, b = mk_base () in
  let fd = ok (Base.openf b (p "/f") Types.flags_create) in
  ignore (ok (Base.pwrite b fd ~off:0 "x"));
  Alcotest.(check int) "buffered" 0 (Base.stats b).Base.commits;
  ignore (ok (Base.fsync b fd));
  Alcotest.(check bool) "committed" true ((Base.stats b).Base.commits >= 1);
  ignore (ok (Base.close b fd))

let test_on_commit_hook () =
  let _disk, _dev, b = mk_base () in
  let fired = ref 0 in
  let seqs = ref [] in
  Base.on_commit b (fun ~commit_seq ->
      incr fired;
      seqs := commit_seq :: !seqs);
  ignore (ok (Base.create b (p "/f") ~mode:0o644));
  ignore (ok (Base.sync b));
  Alcotest.(check int) "hook fired" 1 !fired;
  ignore (ok (Base.create b (p "/g") ~mode:0o644));
  ignore (ok (Base.sync b));
  Alcotest.(check int) "hook fired again" 2 !fired;
  (* The carried commit seq is the journal's durable txn sequence:
     strictly monotonic across commits. *)
  match !seqs with
  | [ s2; s1 ] -> Alcotest.(check bool) "commit seq advances" true (Int64.compare s2 s1 > 0)
  | _ -> Alcotest.fail "expected two recorded commit seqs"

(* ---- caching ---- *)

let test_dcache_effective () =
  let _disk, _dev, b = mk_base () in
  ignore (ok (Base.mkdir b (p "/a") ~mode:0o755));
  ignore (ok (Base.mkdir b (p "/a/b") ~mode:0o755));
  ignore (ok (Base.create b (p "/a/b/f") ~mode:0o644));
  let before = (Base.dcache_stats b).Rae_cache.Lru.hits in
  for _ = 1 to 50 do
    ignore (ok (Base.lookup b (p "/a/b/f")))
  done;
  let after = (Base.dcache_stats b).Rae_cache.Lru.hits in
  Alcotest.(check bool) "dcache hits accumulate" true (after - before >= 100)

let test_negative_dentries () =
  let _disk, _dev, b = mk_base () in
  (* Repeated misses hit the negative entry, not the directory blocks. *)
  (match Base.lookup b (p "/missing") with Error Errno.ENOENT -> () | _ -> Alcotest.fail "expected ENOENT");
  let h0 = (Base.dcache_stats b).Rae_cache.Lru.hits in
  for _ = 1 to 20 do
    match Base.lookup b (p "/missing") with
    | Error Errno.ENOENT -> ()
    | _ -> Alcotest.fail "expected ENOENT"
  done;
  Alcotest.(check bool) "negative entries hit" true ((Base.dcache_stats b).Rae_cache.Lru.hits - h0 >= 20)

let test_bcache_hits () =
  let _disk, _dev, b = mk_base () in
  let fd = ok (Base.openf b (p "/f") Types.flags_create) in
  ignore (ok (Base.pwrite b fd ~off:0 (String.make 8192 'x')));
  for _ = 1 to 30 do
    ignore (ok (Base.pread b fd ~off:0 ~len:8192))
  done;
  ignore (ok (Base.close b fd));
  let s = Base.bcache_stats b in
  Alcotest.(check bool) "block cache hit-dominated" true (s.Rae_cache.Lru.hits > 10 * s.Rae_cache.Lru.misses)

let test_cache_policies_equivalent_semantics () =
  (* LRU vs 2Q must not change any outcome, only performance. *)
  let run policy =
    let _disk, _dev, b =
      mk_base ~config:{ Base.default_config with Base.cache_policy = policy; bcache_capacity = 16 } ()
    in
    let rng = Rae_util.Rng.create 21L in
    let ops = Rae_workload.Workload.ops Rae_workload.Workload.Fileserver rng ~count:300 in
    List.map (fun op -> Base.exec b op) ops
  in
  let a = run `Lru and b = run `Two_q in
  Alcotest.(check bool) "identical outcomes" true
    (List.for_all2 (fun x y -> Op.outcome_equal x y) a b)

(* ---- equivalence with the specification ---- *)

let run_equivalence ?config ~seed ~count () =
  let rng = Rae_util.Rng.create seed in
  let ops = Rae_workload.Workload.uniform rng ~count in
  let sp = Spec.make () in
  let _disk, _dev, b = mk_base ?config () in
  List.iteri
    (fun i op ->
      let ro = Spec.exec sp op in
      let bo = Base.exec b op in
      if not (Op.outcome_equal ro bo) then
        Alcotest.failf "op %d %s: spec %s, base %s (seed %Ld)" i (Op.to_string op)
          (Format.asprintf "%a" Op.pp_outcome ro)
          (Format.asprintf "%a" Op.pp_outcome bo)
          seed)
    ops

let test_equivalence_seeds () =
  List.iter (fun seed -> run_equivalence ~seed ~count:400 ()) [ 1L; 7L; 123L ]

let test_equivalence_small_commit_interval () =
  (* Commit churn must be invisible at the API. *)
  run_equivalence
    ~config:{ Base.default_config with Base.commit_interval = 2; bcache_capacity = 8 }
    ~seed:55L ~count:400 ()

let prop_base_equals_spec =
  QCheck2.Test.make ~name:"base == spec on random traces" ~count:25
    QCheck2.Gen.(pair ui64 (int_range 20 150))
    (fun (seed, count) ->
      run_equivalence ~seed ~count ();
      true)

let test_profile_equivalence () =
  List.iter
    (fun profile ->
      let rng = Rae_util.Rng.create 3L in
      let ops = Rae_workload.Workload.ops profile rng ~count:250 in
      let sp = Spec.make () in
      let _disk, _dev, b = mk_base () in
      List.iteri
        (fun i op ->
          let ro = Spec.exec sp op in
          let bo = Base.exec b op in
          if not (Op.outcome_equal ro bo) then
            Alcotest.failf "%s op %d %s: spec %s, base %s"
              (Rae_workload.Workload.profile_name profile)
              i (Op.to_string op)
              (Format.asprintf "%a" Op.pp_outcome ro)
              (Format.asprintf "%a" Op.pp_outcome bo))
        ops)
    Rae_workload.Workload.all_profiles

(* ---- durability and crash consistency ---- *)

let test_crash_consistency () =
  (* Run a workload through the crash simulator, power-fail at an
     arbitrary point, remount (journal replay) and fsck: the image must be
     consistent regardless of where the crash landed. *)
  let attempts = [ (1L, 17); (2L, 55); (3L, 131); (4L, 200); (5L, 77) ] in
  List.iter
    (fun (seed, crash_after) ->
      let disk = mk_disk () in
      let raw = Device.of_disk disk in
      ignore (ok (Base.mkfs raw ~ninodes:256 ()));
      let sim, dev = Rae_block.Crashsim.create ~rng:(Rae_util.Rng.create seed) raw in
      let b =
        ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = 8 } dev)
      in
      let rng = Rae_util.Rng.create seed in
      let ops = Rae_workload.Workload.ops Rae_workload.Workload.Varmail rng ~count:300 in
      (try
         List.iteri
           (fun i op ->
             if i = crash_after then raise Exit;
             ignore (Base.exec b op))
           ops
       with Exit -> ());
      Rae_block.Crashsim.crash_partial sim;
      (* Remount replays the journal; the resulting image must be clean. *)
      let b2 = ok (Base.mount raw) in
      ignore (ok (Base.unmount b2));
      let report = Fsck.check_device raw in
      (* Orphans and leaked blocks are legal crash leftovers (warnings);
         structural errors are not. *)
      if not (Fsck.clean report) then
        Alcotest.failf "seed %Ld crash@%d: %s" seed crash_after
          (String.concat "; "
             (List.map (fun f -> Format.asprintf "%a" Fsck.pp_finding f) (Fsck.errors report))))
    attempts

let test_synced_data_survives_crash () =
  let disk = mk_disk () in
  let raw = Device.of_disk disk in
  ignore (ok (Base.mkfs raw ~ninodes:256 ()));
  let sim, dev = Rae_block.Crashsim.create raw in
  let b = ok (Base.mount dev) in
  let fd = ok (Base.openf b (p "/precious") Types.flags_create) in
  ignore (ok (Base.pwrite b fd ~off:0 "must survive"));
  ignore (ok (Base.fsync b fd));
  (* Unsynced follow-up. *)
  ignore (ok (Base.pwrite b fd ~off:0 "MUST SURVIVE")) (* not fsynced *);
  Rae_block.Crashsim.crash sim;
  let b2 = ok (Base.mount raw) in
  let fd = ok (Base.openf b2 (p "/precious") Types.flags_ro) in
  Alcotest.(check string) "fsynced content intact" "must survive"
    (ok (Base.pread b2 fd ~off:0 ~len:100))

(* ---- trusting fast paths crash on crafted images ---- *)

let test_crafted_dirent_panics_base () =
  let disk, dev, b = mk_base () in
  ignore dev;
  ignore (ok (Base.create b (p "/x") ~mode:0o644));
  ignore (ok (Base.sync b));
  (* Corrupt the root directory block on the medium and drop caches by
     rebooting, then touch the directory. *)
  let g = (ok (Rae_format.Reader.attach (fun blk -> Disk.read disk blk))).Rae_format.Reader.sb
            .Rae_format.Superblock.geometry in
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:4 (fun _ -> '\000');
  Disk.corrupt_byte disk ~block:g.Layout.data_start ~offset:5 (fun _ -> '\000');
  ignore (ok (Base.contained_reboot b));
  match Base.exec b (Op.Lookup (p "/x")) with
  | exception Detector.Base_bug _ -> ()
  | outcome -> Alcotest.failf "expected a base oops, got %a" Op.pp_outcome outcome

let test_wild_pointer_panics_base () =
  let disk, _dev, b = mk_base () in
  ignore (ok (Base.create b (p "/x") ~mode:0o644));
  let fd = ok (Base.openf b (p "/x") Types.flags_rw) in
  ignore (ok (Base.pwrite b fd ~off:0 "data"));
  ignore (ok (Base.sync b));
  (* Point the file's first block pointer beyond the device. *)
  let g = (ok (Rae_format.Reader.attach (fun blk -> Disk.read disk blk))).Rae_format.Reader.sb
            .Rae_format.Superblock.geometry in
  let iblk, ioff = Layout.inode_location g 2 in
  let table = Disk.read disk iblk in
  Rae_util.Codec.set_u32_int table (ioff + 32) 99999999;
  Disk.write disk iblk table;
  ignore (ok (Base.contained_reboot b));
  let fd2 = ok (Base.openf b (p "/x") Types.flags_ro) in
  ignore fd;
  match Base.exec b (Op.Pread (fd2, 0, 4)) with
  | exception Detector.Base_bug { bug; _ } ->
      Alcotest.(check string) "classified as wild pointer" "wild-pointer" bug
  | outcome -> Alcotest.failf "expected a wild-pointer oops, got %a" Op.pp_outcome outcome

(* ---- injected bugs ---- *)

let arm ids =
  Bug_registry.arm ~rng:(Rae_util.Rng.create 9L)
    (List.filter_map Bug_registry.find ids)

let test_bug_panic () =
  let _disk, _dev, b = mk_base ~bugs:(arm [ "crafted-name-panic" ]) () in
  ignore (ok (Base.mkdir b (p "/safe") ~mode:0o755));
  match Base.exec b (Op.Create (p "/safe/pwn", 0o644)) with
  | exception Detector.Base_bug { bug; _ } ->
      Alcotest.(check string) "bug id" "crafted-name-panic" bug
  | outcome -> Alcotest.failf "expected panic, got %a" Op.pp_outcome outcome

let test_bug_nth_trigger () =
  let _disk, _dev, b = mk_base ~bugs:(arm [ "extent-status-warn" ]) () in
  ignore (ok (Base.create b (p "/f") ~mode:0o644));
  for i = 1 to 4 do
    ignore (Base.exec b (Op.Truncate (p "/f", i)))
  done;
  Alcotest.(check int) "no warning yet" 0 (Detector.warn_count (Base.detector b));
  ignore (Base.exec b (Op.Truncate (p "/f", 5)));
  Alcotest.(check int) "5th truncate warns" 1 (Detector.warn_count (Base.detector b));
  (match Detector.warnings (Base.detector b) with
  | [ w ] -> Alcotest.(check string) "warning names the bug" "extent-status-warn" w.Detector.w_bug
  | _ -> Alcotest.fail "expected exactly one warning");
  ignore (Base.exec b (Op.Truncate (p "/f", 6)));
  Alcotest.(check int) "one-shot trigger" 1 (Detector.warn_count (Base.detector b))

let test_bug_silent_corruption_caught_at_commit () =
  let _disk, _dev, b =
    mk_base
      ~config:{ Base.default_config with Base.commit_interval = 1000 }
      ~bugs:(arm [ "mballoc-freecount" ])
      ()
  in
  (* 30 creates fire the corruption; nothing visible until the commit. *)
  for i = 1 to 30 do
    ignore (Base.exec b (Op.Create (p (Printf.sprintf "/f%d" i), 0o644)))
  done;
  match Base.sync b with
  | exception Detector.Validation_failed { context; _ } ->
      Alcotest.(check string) "caught at the sync barrier" "superblock" context
  | Ok () -> Alcotest.fail "silent corruption reached the disk"
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.to_string e)

let test_bug_dirent_corruption_caught_at_commit () =
  let _disk, _dev, b =
    mk_base
      ~config:{ Base.default_config with Base.commit_interval = 1000 }
      ~bugs:(arm [ "dirent-reclen-zero" ])
      ()
  in
  (try
     for i = 1 to 8 do
       ignore (Base.exec b (Op.Mkdir (p (Printf.sprintf "/d%d" i), 0o755)))
     done
   with Detector.Base_bug _ -> ()
   (* The scribbled cache block may organically crash a later op; either
      detection channel is a detected runtime error. *));
  match Base.sync b with
  | exception Detector.Validation_failed _ -> ()
  | exception Detector.Base_bug _ -> ()
  | Ok () -> Alcotest.fail "corrupt dirent reached the disk"
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.to_string e)

let test_bug_hang () =
  let _disk, _dev, b = mk_base ~bugs:(arm [ "fsync-deadlock" ]) () in
  let fd = ok (Base.openf b (p "/f") Types.flags_create) in
  (try
     for _ = 1 to 15 do
       ignore (Base.exec b (Op.Fsync fd))
     done;
     Alcotest.fail "expected a hang"
   with Detector.Hang { bug; _ } -> Alcotest.(check string) "bug id" "fsync-deadlock" bug)

let test_bug_wrong_result () =
  let _disk, _dev, b = mk_base ~bugs:(arm [ "stat-size-skew" ]) () in
  let fd = ok (Base.openf b (p "/f") Types.flags_create) in
  ignore (ok (Base.pwrite b fd ~off:0 "12345"));
  ignore (ok (Base.close b fd));
  let sizes =
    List.init 20 (fun _ ->
        match Base.exec b (Op.Stat (p "/f")) with
        | Ok (Op.St st) -> st.Types.st_size
        | _ -> -1)
  in
  (* The 20th stat is skewed by one; no exception is raised. *)
  Alcotest.(check int) "19 correct" 5 (List.nth sizes 0);
  Alcotest.(check int) "20th skewed" 6 (List.nth sizes 19)

let test_nondeterministic_bug_fires_sometimes () =
  let bugs = arm [ "rename-race-panic" ] in
  let _disk, _dev, b = mk_base ~bugs () in
  ignore (ok (Base.create b (p "/f0") ~mode:0o644));
  let fired = ref false in
  (try
     for i = 0 to 199 do
       match Base.exec b (Op.Rename (p (Printf.sprintf "/f%d" i), p (Printf.sprintf "/f%d" (i + 1)))) with
       | Ok _ | Error _ -> ()
     done
   with Detector.Base_bug _ -> fired := true);
  Alcotest.(check bool) "racy bug fired within 200 renames" true !fired

(* ---- contained reboot ---- *)

let test_contained_reboot_restores_committed_state () =
  let _disk, _dev, b = mk_base () in
  ignore (ok (Base.create b (p "/committed") ~mode:0o644));
  ignore (ok (Base.sync b));
  ignore (ok (Base.create b (p "/volatile") ~mode:0o644)) (* in the window *);
  let fd = ok (Base.openf b (p "/committed") Types.flags_ro) in
  ignore fd;
  ignore (ok (Base.contained_reboot b));
  (* Committed state is back; the volatile window and fd table are gone. *)
  Alcotest.(check bool) "committed file present" true
    (Result.is_ok (Base.lookup b (p "/committed")));
  (match Base.lookup b (p "/volatile") with
  | Error Errno.ENOENT -> ()
  | _ -> Alcotest.fail "uncommitted state survived the reboot");
  (match Base.pread b fd ~off:0 ~len:1 with
  | Error Errno.EBADF -> ()
  | _ -> Alcotest.fail "fd survived the reboot");
  Alcotest.(check (list (pair int (pair int Alcotest.reject)))) "fd table empty" []
    (List.map (fun (a, b, c) -> (a, (b, c))) (Base.fd_table b))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_basefs"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "smoke" `Quick test_mkfs_mount_smoke;
          Alcotest.test_case "mount unformatted" `Quick test_mount_unformatted;
          Alcotest.test_case "persistence across remount" `Quick test_persistence_across_remount;
          Alcotest.test_case "group commit interval" `Quick test_group_commit_interval;
          Alcotest.test_case "fsync commits" `Quick test_fsync_forces_commit;
          Alcotest.test_case "commit hook" `Quick test_on_commit_hook;
        ] );
      ( "caches",
        [
          Alcotest.test_case "dcache effective" `Quick test_dcache_effective;
          Alcotest.test_case "negative dentries" `Quick test_negative_dentries;
          Alcotest.test_case "bcache hits" `Quick test_bcache_hits;
          Alcotest.test_case "policy-independent semantics" `Quick test_cache_policies_equivalent_semantics;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "fixed seeds" `Quick test_equivalence_seeds;
          Alcotest.test_case "tiny commit interval" `Quick test_equivalence_small_commit_interval;
          Alcotest.test_case "profiles" `Quick test_profile_equivalence;
          q prop_base_equals_spec;
        ] );
      ( "crash",
        [
          Alcotest.test_case "crash consistency" `Quick test_crash_consistency;
          Alcotest.test_case "synced data survives" `Quick test_synced_data_survives_crash;
        ] );
      ( "crafted",
        [
          Alcotest.test_case "crafted dirent panics" `Quick test_crafted_dirent_panics_base;
          Alcotest.test_case "wild pointer panics" `Quick test_wild_pointer_panics_base;
        ] );
      ( "bugs",
        [
          Alcotest.test_case "panic" `Quick test_bug_panic;
          Alcotest.test_case "nth trigger warn" `Quick test_bug_nth_trigger;
          Alcotest.test_case "silent corruption caught" `Quick test_bug_silent_corruption_caught_at_commit;
          Alcotest.test_case "dirent corruption caught" `Quick test_bug_dirent_corruption_caught_at_commit;
          Alcotest.test_case "hang" `Quick test_bug_hang;
          Alcotest.test_case "wrong result undetected" `Quick test_bug_wrong_result;
          Alcotest.test_case "non-deterministic bug" `Quick test_nondeterministic_bug_fires_sometimes;
        ] );
      ( "reboot",
        [ Alcotest.test_case "contained reboot" `Quick test_contained_reboot_restores_committed_state ] );
    ]
