(* Tests for rae_format: layout, superblock, bitmap, inode, dirent, mkfs,
   reader. *)

open Rae_format
module Types = Rae_vfs.Types

let bs = Layout.block_size

let geo ?(nblocks = 256) ?(ninodes = 64) () =
  match Layout.compute ~nblocks ~ninodes () with
  | Ok g -> g
  | Error msg -> Alcotest.failf "layout: %s" msg

(* ---- Layout ---- *)

let test_layout_regions_ordered () =
  let g = geo () in
  Alcotest.(check bool) "ordered" true
    (g.Layout.journal_start = 1
    && g.Layout.inode_bitmap_start = g.Layout.journal_start + g.Layout.journal_len
    && g.Layout.block_bitmap_start = g.Layout.inode_bitmap_start + g.Layout.inode_bitmap_len
    && g.Layout.inode_table_start = g.Layout.block_bitmap_start + g.Layout.block_bitmap_len
    && g.Layout.data_start = g.Layout.inode_table_start + g.Layout.inode_table_len
    && g.Layout.data_start < g.Layout.nblocks)

let test_layout_too_small () =
  match Layout.compute ~nblocks:32 ~ninodes:16 () with
  | Error _ -> ()
  | Ok g -> Alcotest.failf "expected failure, got %a" Layout.pp_geometry g

let test_layout_inode_location () =
  let g = geo () in
  let blk1, off1 = Layout.inode_location g 1 in
  Alcotest.(check (pair int int)) "inode 1" (g.Layout.inode_table_start, 0) (blk1, off1);
  let blk17, off17 = Layout.inode_location g 17 in
  Alcotest.(check (pair int int)) "inode 17 in second block"
    (g.Layout.inode_table_start + 1, 0)
    (blk17, off17);
  (try ignore (Layout.inode_location g 0); Alcotest.fail "ino 0" with Invalid_argument _ -> ());
  try ignore (Layout.inode_location g 65); Alcotest.fail "ino > ninodes"
  with Invalid_argument _ -> ()

let test_layout_max_file () =
  Alcotest.(check int) "addressable blocks" (12 + 1024 + (1024 * 1024)) Layout.max_file_blocks

(* ---- Superblock ---- *)

let mk_sb () = Superblock.make (geo ()) ~free_blocks:10 ~free_inodes:20

let test_sb_roundtrip () =
  let sb = mk_sb () in
  match Superblock.decode (Superblock.encode sb) with
  | Ok sb' -> Alcotest.(check bool) "equal" true (sb = sb')
  | Error e -> Alcotest.failf "decode: %a" Superblock.pp_error e

let test_sb_bad_magic () =
  let b = Superblock.encode (mk_sb ()) in
  Bytes.set b 0 'X';
  match Superblock.decode b with
  | Error (Superblock.Bad_magic _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Superblock.pp_error e
  | Ok _ -> Alcotest.fail "decoded corrupt superblock"

let test_sb_bad_checksum () =
  let b = Superblock.encode (mk_sb ()) in
  (* Flip a byte inside the checksummed area but outside magic/version. *)
  Bytes.set b 70 '\xff';
  match Superblock.decode b with
  | Error Superblock.Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Superblock.pp_error e
  | Ok _ -> Alcotest.fail "decoded corrupt superblock"

let test_sb_crafted_geometry () =
  (* A checksum-valid superblock with impossible geometry must be rejected
     by [decode] but accepted by [decode_unchecked] — the crafted-image
     distinction. *)
  let sb = mk_sb () in
  let crafted = { sb with Superblock.geometry = { sb.Superblock.geometry with Layout.data_start = 5 } } in
  let b = Superblock.encode crafted in
  (match Superblock.decode b with
  | Error (Superblock.Bad_geometry _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Superblock.pp_error e
  | Ok _ -> Alcotest.fail "accepted crafted geometry");
  match Superblock.decode_unchecked b with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unchecked rejected: %a" Superblock.pp_error e

let test_sb_bad_counts () =
  let sb = { (mk_sb ()) with Superblock.free_blocks = 1_000_000 } in
  match Superblock.decode (Superblock.encode sb) with
  | Error (Superblock.Bad_counts _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Superblock.pp_error e
  | Ok _ -> Alcotest.fail "accepted impossible free count"

let test_sb_state () =
  let sb = Superblock.with_state (mk_sb ()) Superblock.Dirty in
  match Superblock.decode (Superblock.encode sb) with
  | Ok sb' -> Alcotest.(check string) "dirty" "dirty" (Superblock.state_to_string sb'.Superblock.state)
  | Error e -> Alcotest.failf "decode: %a" Superblock.pp_error e

(* ---- Bitmap ---- *)

let test_bitmap_basic () =
  let bm = Bitmap.create ~nbits:100 in
  Alcotest.(check int) "all free" 100 (Bitmap.count_free bm);
  Bitmap.set bm 0;
  Bitmap.set bm 99;
  Alcotest.(check bool) "bit 0" true (Bitmap.test bm 0);
  Alcotest.(check bool) "bit 99" true (Bitmap.test bm 99);
  Alcotest.(check bool) "bit 50" false (Bitmap.test bm 50);
  Alcotest.(check int) "two set" 2 (Bitmap.count_set bm);
  Bitmap.clear bm 0;
  Alcotest.(check bool) "cleared" false (Bitmap.test bm 0)

let test_bitmap_result_ops () =
  let bm = Bitmap.create ~nbits:10 in
  Alcotest.(check bool) "set ok" true (Bitmap.set_result bm 3 = Ok ());
  Alcotest.(check bool) "double set fails" true (Result.is_error (Bitmap.set_result bm 3));
  Alcotest.(check bool) "clear ok" true (Bitmap.clear_result bm 3 = Ok ());
  Alcotest.(check bool) "double clear fails" true (Result.is_error (Bitmap.clear_result bm 3));
  Alcotest.(check bool) "out of range" true (Result.is_error (Bitmap.set_result bm 10))

let test_bitmap_find_free () =
  let bm = Bitmap.create ~nbits:8 in
  Bitmap.set bm 0;
  Bitmap.set bm 1;
  Bitmap.set bm 3;
  Alcotest.(check (option int)) "first free" (Some 2) (Bitmap.find_free bm ~from:0);
  Alcotest.(check (option int)) "from 3" (Some 4) (Bitmap.find_free bm ~from:3);
  for i = 0 to 7 do Bitmap.set bm i done;
  Alcotest.(check (option int)) "full" None (Bitmap.find_free bm ~from:0)

(* The seed's bit-at-a-time scan, kept as the reference the word-level
   implementation must agree with. *)
let naive_find_free bm ~from =
  let n = Bitmap.nbits bm in
  let rec go i = if i >= n then None else if not (Bitmap.test bm i) then Some i else go (i + 1) in
  if from < 0 || from >= n then None else go from

let prop_find_free_matches_naive =
  (* Sizes straddle byte and 64-bit-word boundaries so the fast paths
     (0xFF byte skip, int64 word skip, partial first/last byte) all get
     exercised, including the fully-set and fully-clear extremes. *)
  QCheck2.Test.make ~name:"word-scan find_free == naive scan" ~count:300
    QCheck2.Gen.(
      int_range 1 700 >>= fun nbits ->
      oneof
        [
          return [];  (* empty *)
          return (List.init nbits Fun.id);  (* full *)
          list_size (int_range 0 300) (int_bound (nbits - 1));
        ]
      >>= fun sets ->
      int_range 0 (nbits - 1) >>= fun from -> return (nbits, sets, from))
    (fun (nbits, sets, from) ->
      let bm = Bitmap.create ~nbits in
      List.iter (Bitmap.set bm) sets;
      Bitmap.find_free bm ~from = naive_find_free bm ~from)

let prop_cursor_allocates_every_free_bit =
  (* Next-fit must find a free bit iff one exists in [lo, nbits): draining
     the rotor yields each free bit exactly once, wrap-around included. *)
  QCheck2.Test.make ~name:"rotor drains each free bit >= lo exactly once" ~count:300
    QCheck2.Gen.(
      int_range 1 300 >>= fun nbits ->
      list_size (int_bound 120) (int_bound (nbits - 1)) >>= fun sets ->
      int_range 0 (nbits - 1) >>= fun lo ->
      (* Pre-advance the rotor a random amount so draining starts mid-bitmap. *)
      int_bound 40 >>= fun spins -> return (nbits, sets, lo, spins))
    (fun (nbits, sets, lo, spins) ->
      let bm = Bitmap.create ~nbits in
      List.iter (Bitmap.set bm) sets;
      let expected =
        List.filter (fun i -> i >= lo && not (Bitmap.test bm i)) (List.init nbits Fun.id)
      in
      for _ = 1 to spins do
        match Bitmap.find_free_next bm ~lo with
        | Some i -> Bitmap.set bm i; Bitmap.clear bm i
        | None -> ()
      done;
      let got = ref [] in
      let rec drain () =
        match Bitmap.find_free_next bm ~lo with
        | None -> ()
        | Some i ->
            Bitmap.set bm i;
            got := i :: !got;
            drain ()
      in
      drain ();
      List.sort compare !got = expected)

let prop_counts_maintained =
  (* count_free is now a maintained field; it must stay equal to an honest
     recount through arbitrary set/clear (including redundant) sequences. *)
  QCheck2.Test.make ~name:"maintained count_free == recount" ~count:300
    QCheck2.Gen.(
      int_range 1 200 >>= fun nbits ->
      list_size (int_bound 150) (pair bool (int_bound (nbits - 1))) >>= fun ops ->
      return (nbits, ops))
    (fun (nbits, ops) ->
      let bm = Bitmap.create ~nbits in
      List.iter (fun (set, i) -> if set then Bitmap.set bm i else Bitmap.clear bm i) ops;
      let recount = ref 0 in
      for i = 0 to nbits - 1 do
        if not (Bitmap.test bm i) then incr recount
      done;
      Bitmap.count_free bm = !recount)

let test_bitmap_cursor_next_fit () =
  let bm = Bitmap.create ~nbits:100 in
  (* A fresh rotor behaves first-fit. *)
  Alcotest.(check (option int)) "first" (Some 10) (Bitmap.find_free_next bm ~lo:10);
  Bitmap.set bm 10;
  Alcotest.(check (option int)) "resumes" (Some 11) (Bitmap.find_free_next bm ~lo:10);
  Bitmap.set bm 11;
  (* A bit freed behind the rotor is not reused until the wrap. *)
  Bitmap.clear bm 10;
  Alcotest.(check (option int)) "next-fit skips freed prefix" (Some 12)
    (Bitmap.find_free_next bm ~lo:10);
  Bitmap.set bm 12;
  for i = 13 to 99 do
    Bitmap.set bm i
  done;
  Alcotest.(check (option int)) "wraps to the freed bit" (Some 10) (Bitmap.find_free_next bm ~lo:10);
  Bitmap.set bm 10;
  Alcotest.(check (option int)) "full above lo" None (Bitmap.find_free_next bm ~lo:10);
  Alcotest.(check (option int)) "still free below lo" (Some 0) (Bitmap.find_free_next bm ~lo:0)

let test_bitmap_parse_restores_count () =
  let bm = Bitmap.create ~nbits:1000 in
  List.iter (Bitmap.set bm) [ 0; 7; 8; 63; 64; 512; 999 ];
  let blocks = Bitmap.to_blocks bm ~block_size:bs in
  match Bitmap.of_blocks blocks ~nbits:1000 with
  | Ok bm' ->
      Alcotest.(check int) "count survives parse" (Bitmap.count_set bm) (Bitmap.count_set bm');
      Alcotest.(check int) "free count" (1000 - 7) (Bitmap.count_free bm')
  | Error e -> Alcotest.failf "of_blocks: %s" e

let test_bitmap_block_roundtrip () =
  let bm = Bitmap.create ~nbits:1000 in
  List.iter (Bitmap.set bm) [ 0; 1; 17; 999; 512 ];
  let blocks = Bitmap.to_blocks bm ~block_size:bs in
  Alcotest.(check int) "one block" 1 (List.length blocks);
  match Bitmap.of_blocks blocks ~nbits:1000 with
  | Ok bm' -> Alcotest.(check bool) "equal" true (Bitmap.equal bm bm')
  | Error e -> Alcotest.failf "of_blocks: %s" e

let test_bitmap_padding_strictness () =
  let bm = Bitmap.create ~nbits:9 in
  let blocks = Bitmap.to_blocks bm ~block_size:bs in
  let block = List.hd blocks in
  (* Corrupt a padding bit (bit 9..15 live in byte 1). *)
  Bytes.set block 1 '\x00';
  (match Bitmap.of_blocks [ block ] ~nbits:9 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "strict parse accepted bad padding");
  match Bitmap.of_blocks_lenient [ block ] ~nbits:9 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "lenient parse rejected: %s" e

let test_bitmap_too_few_blocks () =
  match Bitmap.of_blocks [ Bytes.make 4 '\xff' ] ~nbits:100 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted undersized bitmap"

let prop_bitmap_roundtrip =
  QCheck2.Test.make ~name:"bitmap to/of blocks roundtrip" ~count:100
    QCheck2.Gen.(pair (int_range 1 5000) (list_size (int_bound 50) (int_bound 4999)))
    (fun (nbits, sets) ->
      let bm = Bitmap.create ~nbits in
      List.iter (fun i -> if i < nbits then Bitmap.set bm i) sets;
      match Bitmap.of_blocks (Bitmap.to_blocks bm ~block_size:bs) ~nbits with
      | Ok bm' -> Bitmap.equal bm bm'
      | Error _ -> false)

(* ---- Inode ---- *)

let sample_inode () =
  {
    (Inode.empty Types.Regular ~mode:0o644 ~time:42L) with
    Inode.size = 123456;
    nlink = 2;
    direct = Array.init 12 (fun i -> if i < 4 then 100 + i else 0);
    indirect = 200;
    generation = 7;
  }

let test_inode_roundtrip () =
  let i = sample_inode () in
  let b = Bytes.make bs '\000' in
  Inode.encode i ~ino:5 b ~pos:256;
  match Inode.decode b ~pos:256 ~ino:5 with
  | Ok i' -> Alcotest.(check bool) "equal" true (Inode.equal i i')
  | Error e -> Alcotest.failf "decode: %a" Inode.pp_error e

let test_inode_checksum_seeded_by_ino () =
  (* The same bytes decoded as a different inode number must fail: catches
     inode-table blits to the wrong slot. *)
  let i = sample_inode () in
  let b = Bytes.make bs '\000' in
  Inode.encode i ~ino:5 b ~pos:0;
  match Inode.decode b ~pos:0 ~ino:6 with
  | Error (Inode.Bad_checksum _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Inode.pp_error e
  | Ok _ -> Alcotest.fail "accepted wrong-slot inode"

let test_inode_corruption_detected () =
  let i = sample_inode () in
  let b = Bytes.make bs '\000' in
  Inode.encode i ~ino:1 b ~pos:0;
  Bytes.set b 9 '\xff' (* inside size field *);
  match Inode.decode b ~pos:0 ~ino:1 with
  | Error (Inode.Bad_checksum _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Inode.pp_error e
  | Ok _ -> Alcotest.fail "accepted corrupt inode"

let test_inode_nocheck_trusts () =
  (* The base's fast path decodes without verifying — deliberately. *)
  let i = sample_inode () in
  let b = Bytes.make bs '\000' in
  Inode.encode i ~ino:1 b ~pos:0;
  Bytes.set b 250 '\x01' (* corrupt a reserved byte: checksum now wrong *);
  let i' = Inode.decode_nocheck b ~pos:0 in
  Alcotest.(check bool) "fields still parse" true (i'.Inode.size = i.Inode.size)

let test_inode_free_slot () =
  let b = Bytes.make bs '\000' in
  Alcotest.(check bool) "all-zero is free" true (Inode.is_free_slot b ~pos:0);
  Inode.encode (sample_inode ()) ~ino:2 b ~pos:0;
  Alcotest.(check bool) "encoded is not free" false (Inode.is_free_slot b ~pos:0)

let test_inode_field_validation () =
  let b = Bytes.make bs '\000' in
  (* Kind code 0 (free-slot marker) with nonzero content → Bad_kind. *)
  Rae_util.Codec.set_u16 b 4 1 (* nlink *);
  (match Inode.decode b ~pos:0 ~ino:1 with
  | Error (Inode.Bad_kind 0) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Inode.pp_error e
  | Ok _ -> Alcotest.fail "accepted kind 0");
  (* nlink = 0 is legal (orphans); an impossible size is not.  Craft a
     checksum-valid inode whose size exceeds the format maximum. *)
  let crafted = { (sample_inode ()) with Inode.size = Layout.max_file_size + 1 } in
  Inode.encode crafted ~ino:1 b ~pos:0;
  (match Inode.decode b ~pos:0 ~ino:1 with
  | Error (Inode.Bad_field _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Inode.pp_error e
  | Ok _ -> Alcotest.fail "accepted oversized file");
  (* And nlink = 0 decodes fine. *)
  let orphan = { (sample_inode ()) with Inode.nlink = 0 } in
  Inode.encode orphan ~ino:1 b ~pos:0;
  match Inode.decode b ~pos:0 ~ino:1 with
  | Ok i -> Alcotest.(check int) "orphan nlink" 0 i.Inode.nlink
  | Error e -> Alcotest.failf "orphan rejected: %a" Inode.pp_error e

let prop_inode_roundtrip =
  let gen =
    QCheck2.Gen.(
      let* kind = oneofl [ Types.Regular; Types.Directory; Types.Symlink ] in
      let* mode = int_bound 0o777 in
      let* nlink = int_range 1 100 in
      let* size = int_bound Layout.max_file_size in
      let* ptrs = array_size (return 12) (int_bound 5000) in
      let* ind = int_bound 5000 in
      let* gen_ = int_bound 1000 in
      return
        {
          (Inode.empty kind ~mode ~time:1L) with
          Inode.nlink;
          size;
          direct = ptrs;
          indirect = ind;
          generation = gen_;
        })
  in
  QCheck2.Test.make ~name:"inode encode/decode roundtrip" ~count:300 gen (fun i ->
      let b = Bytes.make Layout.inode_size '\000' in
      Inode.encode i ~ino:9 b ~pos:0;
      match Inode.decode b ~pos:0 ~ino:9 with Ok i' -> Inode.equal i i' | Error _ -> false)

(* ---- Dirent ---- *)

let reg = Types.kind_code Types.Regular
let dirk = Types.kind_code Types.Directory

let entries_of b =
  match Dirent.list b with
  | Ok es -> List.map (fun e -> (e.Dirent.name, e.Dirent.ino)) es
  | Error e -> Alcotest.failf "list: %a" Dirent.pp_error e

let test_dirent_empty_block () =
  let b = Dirent.empty_block () in
  Alcotest.(check int) "no entries" 0 (Dirent.count b);
  Alcotest.(check bool) "validates" true (Dirent.validate b = Ok ());
  Alcotest.(check int) "all space free" bs (Dirent.free_bytes b)

let test_dirent_insert_find_remove () =
  let b = Dirent.empty_block () in
  Alcotest.(check bool) "insert a" true (Dirent.insert b ~name:"alpha" ~ino:10 ~kind_code:reg);
  Alcotest.(check bool) "insert b" true (Dirent.insert b ~name:"beta" ~ino:11 ~kind_code:dirk);
  Alcotest.(check bool) "insert c" true (Dirent.insert b ~name:"gamma" ~ino:12 ~kind_code:reg);
  Alcotest.(check int) "three entries" 3 (Dirent.count b);
  (match Dirent.find b "beta" with
  | Some (Ok e) ->
      Alcotest.(check int) "ino" 11 e.Dirent.ino;
      Alcotest.(check int) "kind" dirk e.Dirent.kind_code
  | Some (Error e) -> Alcotest.failf "find: %a" Dirent.pp_error e
  | None -> Alcotest.fail "beta not found");
  Alcotest.(check bool) "absent name" true (Dirent.find b "delta" = None);
  Alcotest.(check bool) "remove beta" true (Dirent.remove b "beta");
  Alcotest.(check bool) "beta gone" true (Dirent.find b "beta" = None);
  Alcotest.(check int) "two left" 2 (Dirent.count b);
  Alcotest.(check bool) "still valid" true (Dirent.validate b = Ok ());
  Alcotest.(check bool) "remove absent" false (Dirent.remove b "beta")

let test_dirent_remove_first_entry () =
  let b = Dirent.empty_block () in
  ignore (Dirent.insert b ~name:"first" ~ino:1 ~kind_code:reg);
  ignore (Dirent.insert b ~name:"second" ~ino:2 ~kind_code:reg);
  Alcotest.(check bool) "remove head" true (Dirent.remove b "first");
  Alcotest.(check bool) "valid after head removal" true (Dirent.validate b = Ok ());
  Alcotest.(check (list (pair string int))) "second remains" [ ("second", 2) ] (entries_of b)

let test_dirent_space_reuse () =
  let b = Dirent.empty_block () in
  ignore (Dirent.insert b ~name:"victim" ~ino:1 ~kind_code:reg);
  ignore (Dirent.insert b ~name:"keeper" ~ino:2 ~kind_code:reg);
  ignore (Dirent.remove b "victim");
  Alcotest.(check bool) "reinsert into freed space" true
    (Dirent.insert b ~name:"newbie" ~ino:3 ~kind_code:reg);
  Alcotest.(check bool) "valid" true (Dirent.validate b = Ok ());
  let names = List.sort compare (List.map fst (entries_of b)) in
  Alcotest.(check (list string)) "both present" [ "keeper"; "newbie" ] names

let test_dirent_block_fills_up () =
  let b = Dirent.empty_block () in
  let inserted = ref 0 in
  (try
     for i = 0 to 1000 do
       if Dirent.insert b ~name:(Printf.sprintf "file%04d" i) ~ino:(i + 1) ~kind_code:reg then
         incr inserted
       else raise Exit
     done
   with Exit -> ());
  (* 16-byte records (8 header + 8 padded name): 256 per 4096 block. *)
  Alcotest.(check int) "fills to capacity" 256 !inserted;
  Alcotest.(check bool) "still valid when full" true (Dirent.validate b = Ok ())

let craft set_off v b =
  let c = Bytes.copy b in
  Rae_util.Codec.set_u16 c set_off v;
  c

let test_dirent_crafted_rec_len_zero () =
  let b = Dirent.empty_block () in
  ignore (Dirent.insert b ~name:"x" ~ino:1 ~kind_code:reg);
  let crafted = craft 4 0 b (* rec_len of first record = 0: kernel lockup bug shape *) in
  (match Dirent.validate crafted with
  | Error (Dirent.Bad_rec_len _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Dirent.pp_error e
  | Ok () -> Alcotest.fail "accepted rec_len 0");
  (* The trusting fast path must at least terminate. *)
  ignore (Dirent.list_nocheck crafted)

let test_dirent_crafted_overrun () =
  let b = Dirent.empty_block () in
  ignore (Dirent.insert b ~name:"x" ~ino:1 ~kind_code:reg);
  let crafted = craft 4 8192 b in
  match Dirent.validate crafted with
  | Error (Dirent.Overrun _ | Dirent.Bad_rec_len _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Dirent.pp_error e
  | Ok () -> Alcotest.fail "accepted overrun"

let test_dirent_crafted_name_len () =
  let b = Dirent.empty_block () in
  ignore (Dirent.insert b ~name:"ab" ~ino:1 ~kind_code:reg);
  let c = Bytes.copy b in
  Rae_util.Codec.set_u8 c 6 200 (* name_len stretched over the padding *);
  match Dirent.validate c with
  | Error (Dirent.Bad_name_len _ | Dirent.Bad_name _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Dirent.pp_error e
  | Ok () -> Alcotest.fail "accepted bad name_len"

let test_dirent_dot_entries_allowed () =
  let b = Dirent.empty_block () in
  Alcotest.(check bool) "." true (Dirent.insert b ~name:"." ~ino:1 ~kind_code:dirk);
  Alcotest.(check bool) ".." true (Dirent.insert b ~name:".." ~ino:1 ~kind_code:dirk);
  Alcotest.(check bool) "valid" true (Dirent.validate b = Ok ())

let prop_dirent_insert_remove =
  (* Random insert/remove sequences keep the block structurally valid and
     consistent with a model map. *)
  let gen_name = QCheck2.Gen.(map (Printf.sprintf "n%03d") (int_bound 40)) in
  QCheck2.Test.make ~name:"dirent block vs model" ~count:200
    QCheck2.Gen.(list_size (int_bound 60) (pair bool gen_name))
    (fun script ->
      let b = Dirent.empty_block () in
      let model = Hashtbl.create 16 in
      let next_ino = ref 1 in
      List.iter
        (fun (is_insert, name) ->
          if is_insert then begin
            if not (Hashtbl.mem model name) then begin
              incr next_ino;
              if Dirent.insert b ~name ~ino:!next_ino ~kind_code:1 then
                Hashtbl.replace model name !next_ino
            end
          end
          else if Hashtbl.mem model name then begin
            ignore (Dirent.remove b name);
            Hashtbl.remove model name
          end)
        script;
      Dirent.validate b = Ok ()
      && Dirent.count b = Hashtbl.length model
      && Hashtbl.fold
           (fun name ino acc ->
             acc
             && match Dirent.find b name with Some (Ok e) -> e.Dirent.ino = ino | _ -> false)
           model true)

(* ---- Mkfs + Reader ---- *)

let mk_device ?(nblocks = 256) () =
  let disk = Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency ~block_size:bs ~nblocks () in
  (disk, Rae_block.Device.of_disk disk)

let test_mkfs_produces_valid_image () =
  let _disk, dev = mk_device () in
  match Mkfs.format dev ~ninodes:64 () with
  | Error msg -> Alcotest.failf "mkfs: %s" msg
  | Ok sb ->
      Alcotest.(check int) "free inodes" 63 sb.Superblock.free_inodes;
      let reader =
        match Reader.attach (fun blk -> Rae_block.Device.read dev blk) with
        | Ok r -> r
        | Error e -> Alcotest.failf "reader attach: %a" Reader.pp_error e
      in
      (match Reader.read_inode reader 1 with
      | Ok root ->
          Alcotest.(check bool) "root is dir" true (root.Inode.kind = Types.Directory);
          Alcotest.(check int) "root nlink" 2 root.Inode.nlink;
          (match Reader.read_file_block reader root 0 with
          | Ok block ->
              let names = List.map (fun e -> e.Dirent.name) (Result.get_ok (Dirent.list block)) in
              Alcotest.(check (list string)) "dot entries" [ "."; ".." ] names
          | Error e -> Alcotest.failf "root block: %a" Reader.pp_error e)
      | Error e -> Alcotest.failf "root inode: %a" Reader.pp_error e);
      (match Reader.read_inode_opt reader 2 with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "inode 2 should be free"
      | Error e -> Alcotest.failf "inode 2: %a" Reader.pp_error e);
      match (Reader.load_inode_bitmap reader, Reader.load_block_bitmap reader) with
      | Ok ibm, Ok bbm ->
          Alcotest.(check int) "inode bitmap free" 63 (Bitmap.count_free ibm);
          Alcotest.(check int) "block bitmap free" sb.Superblock.free_blocks (Bitmap.count_free bbm)
      | Error e, _ | _, Error e -> Alcotest.failf "bitmaps: %a" Reader.pp_error e

let test_mkfs_too_small () =
  let _disk, dev = mk_device ~nblocks:16 () in
  match Mkfs.format dev ~ninodes:64 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mkfs accepted a too-small device"

let test_reader_file_block_chains () =
  (* Build an inode by hand with direct, indirect and double-indirect
     pointers and verify the resolution logic at each level. *)
  let disk, dev = mk_device ~nblocks:4096 () in
  ignore (Result.get_ok (Mkfs.format dev ~ninodes:64 ()));
  let reader = Result.get_ok (Reader.attach (fun blk -> Rae_block.Device.read dev blk)) in
  let g = Reader.geometry reader in
  let d0 = g.Layout.data_start in
  (* indirect block at d0+20: entry 0 -> d0+30; double at d0+21: L1[0] ->
     d0+22, whose entry 5 -> d0+40. *)
  let iblk = Bytes.make bs '\000' in
  Rae_util.Codec.set_u32_int iblk 0 (d0 + 30);
  Rae_block.Disk.write disk (d0 + 20) iblk;
  let dblk = Bytes.make bs '\000' in
  Rae_util.Codec.set_u32_int dblk 0 (d0 + 22);
  Rae_block.Disk.write disk (d0 + 21) dblk;
  let l2 = Bytes.make bs '\000' in
  Rae_util.Codec.set_u32_int l2 (4 * 5) (d0 + 40);
  Rae_block.Disk.write disk (d0 + 22) l2;
  let inode =
    {
      (Inode.empty Types.Regular ~mode:0o644 ~time:0L) with
      Inode.size = Layout.max_file_size;
      direct = Array.init 12 (fun i -> if i = 0 then d0 + 10 else 0);
      indirect = d0 + 20;
      double_indirect = d0 + 21;
    }
  in
  let fb i = Result.get_ok (Reader.file_block reader inode i) in
  Alcotest.(check int) "direct 0" (d0 + 10) (fb 0);
  Alcotest.(check int) "direct hole" 0 (fb 1);
  Alcotest.(check int) "indirect entry 0" (d0 + 30) (fb 12);
  Alcotest.(check int) "indirect hole" 0 (fb 13);
  Alcotest.(check int) "double [0][5]" (d0 + 40) (fb (12 + 1024 + 5));
  Alcotest.(check int) "double hole L1" 0 (fb (12 + 1024 + 1024 + 3));
  (* Out-of-range pointer must be rejected. *)
  let bad = { inode with Inode.direct = Array.make 12 1 (* metadata block *) } in
  Alcotest.(check bool) "bad pointer rejected" true (Result.is_error (Reader.file_block reader bad 0))

let test_reader_read_file () =
  let disk, dev = mk_device () in
  ignore (Result.get_ok (Mkfs.format dev ~ninodes:64 ()));
  let reader = Result.get_ok (Reader.attach (fun blk -> Rae_block.Device.read dev blk)) in
  let g = Reader.geometry reader in
  let d0 = g.Layout.data_start in
  let content = Bytes.make bs 'q' in
  Rae_block.Disk.write disk (d0 + 3) content;
  let inode =
    {
      (Inode.empty Types.Regular ~mode:0o644 ~time:0L) with
      Inode.size = 100;
      direct = Array.init 12 (fun i -> if i = 0 then d0 + 3 else 0);
    }
  in
  Alcotest.(check string) "first 100 bytes" (String.make 100 'q')
    (Result.get_ok (Reader.read_file reader inode))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_format"
    [
      ( "layout",
        [
          Alcotest.test_case "regions ordered" `Quick test_layout_regions_ordered;
          Alcotest.test_case "too small rejected" `Quick test_layout_too_small;
          Alcotest.test_case "inode location" `Quick test_layout_inode_location;
          Alcotest.test_case "max file blocks" `Quick test_layout_max_file;
        ] );
      ( "superblock",
        [
          Alcotest.test_case "roundtrip" `Quick test_sb_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_sb_bad_magic;
          Alcotest.test_case "bad checksum" `Quick test_sb_bad_checksum;
          Alcotest.test_case "crafted geometry" `Quick test_sb_crafted_geometry;
          Alcotest.test_case "bad counts" `Quick test_sb_bad_counts;
          Alcotest.test_case "state field" `Quick test_sb_state;
        ] );
      ( "bitmap",
        [
          Alcotest.test_case "basic ops" `Quick test_bitmap_basic;
          Alcotest.test_case "checked set/clear" `Quick test_bitmap_result_ops;
          Alcotest.test_case "find_free" `Quick test_bitmap_find_free;
          Alcotest.test_case "next-fit rotor" `Quick test_bitmap_cursor_next_fit;
          Alcotest.test_case "parse restores count" `Quick test_bitmap_parse_restores_count;
          Alcotest.test_case "block roundtrip" `Quick test_bitmap_block_roundtrip;
          Alcotest.test_case "padding strictness" `Quick test_bitmap_padding_strictness;
          Alcotest.test_case "undersized rejected" `Quick test_bitmap_too_few_blocks;
          q prop_bitmap_roundtrip;
          q prop_find_free_matches_naive;
          q prop_cursor_allocates_every_free_bit;
          q prop_counts_maintained;
        ] );
      ( "inode",
        [
          Alcotest.test_case "roundtrip" `Quick test_inode_roundtrip;
          Alcotest.test_case "checksum seeded by ino" `Quick test_inode_checksum_seeded_by_ino;
          Alcotest.test_case "corruption detected" `Quick test_inode_corruption_detected;
          Alcotest.test_case "nocheck trusts" `Quick test_inode_nocheck_trusts;
          Alcotest.test_case "free slot detection" `Quick test_inode_free_slot;
          Alcotest.test_case "field validation" `Quick test_inode_field_validation;
          q prop_inode_roundtrip;
        ] );
      ( "dirent",
        [
          Alcotest.test_case "empty block" `Quick test_dirent_empty_block;
          Alcotest.test_case "insert/find/remove" `Quick test_dirent_insert_find_remove;
          Alcotest.test_case "remove first entry" `Quick test_dirent_remove_first_entry;
          Alcotest.test_case "space reuse" `Quick test_dirent_space_reuse;
          Alcotest.test_case "fills to capacity" `Quick test_dirent_block_fills_up;
          Alcotest.test_case "crafted rec_len 0" `Quick test_dirent_crafted_rec_len_zero;
          Alcotest.test_case "crafted overrun" `Quick test_dirent_crafted_overrun;
          Alcotest.test_case "crafted name_len" `Quick test_dirent_crafted_name_len;
          Alcotest.test_case "dot entries allowed" `Quick test_dirent_dot_entries_allowed;
          q prop_dirent_insert_remove;
        ] );
      ( "mkfs+reader",
        [
          Alcotest.test_case "mkfs valid image" `Quick test_mkfs_produces_valid_image;
          Alcotest.test_case "mkfs too small" `Quick test_mkfs_too_small;
          Alcotest.test_case "file block chains" `Quick test_reader_file_block_chains;
          Alcotest.test_case "read_file" `Quick test_reader_read_file;
        ] );
    ]
