(* Tests for rae_par and the four parallelized layers (PR: domain
   parallelism): pool fork/join semantics, fsck par = seq, parallel
   destage byte-equal to sequential, async checkpoint fold = sync fold
   (including the warm-generation guard and the cache-invalidation
   adversary), and crash-sweep verdict-set equality across pool sizes. *)

open Rae_vfs
module Pool = Rae_par.Pool
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Layout = Rae_format.Layout
module Journal = Rae_journal.Journal
module Fsck = Rae_fsck.Fsck
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Checkpoint = Rae_core.Checkpoint
module Engine = Rae_crash.Engine
module Spec = Rae_specfs.Spec

let p = Path.parse_exn
let bs = Layout.block_size
let ok = Result.get_ok

(* One shared 4-domain pool for the property suites: spawning domains per
   qcheck iteration would dominate the runtime, and reuse is exactly the
   pool's contract.  Joined at process exit. *)
let pool4 =
  lazy
    (let pl = Pool.create ~domains:4 () in
     at_exit (fun () -> Pool.shutdown pl);
     pl)

let with_pool domains f =
  let pl = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pl) (fun () -> f pl)

(* ---- the pool itself ---- *)

let test_pool_size_one_is_sequential () =
  with_pool 1 (fun pl ->
      Alcotest.(check int) "size" 1 (Pool.size pl);
      let seen = ref [] in
      Pool.parallel_for pl ~n:10 (fun i -> seen := i :: !seen);
      Alcotest.(check (list int)) "ascending order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
        (List.rev !seen);
      let st = Pool.stats pl in
      Alcotest.(check int) "counted as sequential" 1 st.Pool.seq_batches;
      Alcotest.(check int) "no parallel batch" 0 st.Pool.batches)

let test_pool_every_index_exactly_once () =
  with_pool 4 (fun pl ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* Small chunks force dealing across all four deques (and give the
         work-stealing path something to steal). *)
      Pool.parallel_for pl ~chunk:7 ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "index %d ran %d times" i c)
        hits;
      let st = Pool.stats pl in
      Alcotest.(check bool) "chunks counted" true (st.Pool.tasks_run >= n / 7);
      Alcotest.(check int) "one parallel batch" 1 st.Pool.batches;
      Pool.reset_stats pl;
      Alcotest.(check int) "reset" 0 (Pool.stats pl).Pool.tasks_run)

let test_pool_map_array () =
  with_pool 3 (fun pl ->
      let xs = Array.init 257 (fun i -> i) in
      let got = Pool.map_array pl ~chunk:5 (fun x -> (x * 2) + 1) xs in
      Alcotest.(check bool) "matches Array.map" true
        (got = Array.map (fun x -> (x * 2) + 1) xs))

let test_pool_run_thunks () =
  with_pool 4 (fun pl ->
      let cells = Array.make 9 0 in
      Pool.run pl (List.init 9 (fun i () -> cells.(i) <- i + 1));
      Alcotest.(check bool) "all thunks ran" true
        (cells = Array.init 9 (fun i -> i + 1)))

let test_pool_reraises_child_exception () =
  with_pool 4 (fun pl ->
      (match Pool.parallel_for pl ~chunk:1 ~n:64 (fun i -> if i = 17 then failwith "boom17") with
      | () -> Alcotest.fail "expected the child's exception"
      | exception Failure m -> Alcotest.(check string) "child exception re-raised" "boom17" m);
      (* The batch joined cleanly: the pool is reusable afterwards. *)
      let hits = Array.make 64 0 in
      Pool.parallel_for pl ~chunk:1 ~n:64 (fun i -> hits.(i) <- 1);
      Alcotest.(check bool) "pool survives a failed batch" true
        (Array.for_all (fun c -> c = 1) hits))

let test_pool_shutdown_degrades () =
  let pl = Pool.create ~domains:3 () in
  Pool.shutdown pl;
  Pool.shutdown pl (* idempotent *);
  let seen = ref [] in
  Pool.parallel_for pl ~n:5 (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "sequential after shutdown" [ 0; 1; 2; 3; 4 ] (List.rev !seen)

(* ---- fsck: parallel passes = sequential passes ---- *)

(* A populated, committed image with [ncorrupt] random single-byte
   corruptions.  commit_interval 1 keeps the journal clean so every
   finding comes from the corruptions, not an uncommitted window. *)
let corrupted_image ~seed ~ncorrupt =
  let nblocks = 1024 in
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:128 ()));
  let base =
    ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = 1 } dev)
  in
  let rng = Rae_util.Rng.create seed in
  List.iter
    (fun op -> ignore (Base.exec base op))
    (Rae_workload.Workload.uniform rng ~count:120);
  for _ = 1 to ncorrupt do
    Disk.corrupt_byte disk
      ~block:(1 + Rae_util.Rng.int rng (nblocks - 1))
      ~offset:(Rae_util.Rng.int rng bs)
      (fun _ -> Char.chr (Rae_util.Rng.int rng 256))
  done;
  disk

let normalized_findings r =
  List.sort compare (List.map (fun f -> Format.asprintf "%a" Fsck.pp_finding f) r.Fsck.findings)

let prop_fsck_par_equals_seq =
  QCheck2.Test.make ~name:"fsck par = seq (normalized findings)" ~count:10
    QCheck2.Gen.(pair ui64 (int_range 0 12))
    (fun (seed, ncorrupt) ->
      let disk = corrupted_image ~seed ~ncorrupt in
      let seq = Fsck.check_device (Device.of_disk disk) in
      let par = Fsck.check_device ~pool:(Lazy.force pool4) (Device.of_disk disk) in
      if Fsck.clean seq <> Fsck.clean par then
        QCheck2.Test.fail_reportf "clean verdicts differ (seed %Ld)" seed;
      if normalized_findings seq <> normalized_findings par then
        QCheck2.Test.fail_reportf "findings differ (seed %Ld):\nseq: %s\npar: %s" seed
          (String.concat " | " (normalized_findings seq))
          (String.concat " | " (normalized_findings par));
      if seq.Fsck.inodes_checked <> par.Fsck.inodes_checked then
        QCheck2.Test.fail_reportf "inodes_checked differ (seed %Ld)" seed;
      if seq.Fsck.dirs_walked <> par.Fsck.dirs_walked then
        QCheck2.Test.fail_reportf "dirs_walked differ (seed %Ld)" seed;
      true)

let test_fsck_par_clean_image () =
  let disk = corrupted_image ~seed:42L ~ncorrupt:0 in
  let par = Fsck.check_device ~pool:(Lazy.force pool4) (Device.of_disk disk) in
  Alcotest.(check bool) "populated uncorrupted image is clean" true (Fsck.clean par)

(* ---- journal replay: parallel destage byte-equal to sequential ---- *)

(* Build an image whose journal holds committed-but-undestaged
   transactions: run commits through a device that keeps the journal
   record writes but drops both the home-location writes and the journal
   superblock's tail advance — exactly the on-medium state of a crash
   after the journal flush.  Replay must then destage everything. *)
let undestaged_image ~seed ~ntxns =
  let nblocks = 512 and journal_len = 64 in
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks () in
  let raw = Device.of_disk disk in
  let g = ok (Layout.compute ~nblocks ~ninodes:64 ~journal_len ()) in
  Journal.format raw g;
  let jlo = g.Layout.journal_start in
  let drop_homes =
    {
      raw with
      Device.dev_write =
        (fun b data -> if b > jlo && b < jlo + journal_len then Device.write raw b data);
    }
  in
  let j = ok (Journal.attach drop_homes g) in
  let rng = Rae_util.Rng.create seed in
  let written = ref [] in
  for _ = 1 to ntxns do
    let txn = Journal.begin_txn j in
    (* A handful of writes per txn, with deliberate cross-txn overlap so
       last-write-wins matters, a magic-collision block to exercise
       escape/unescape, and the occasional revoke to exercise
       suppression. *)
    for _ = 1 to 1 + Rae_util.Rng.int rng 4 do
      let home = g.Layout.data_start + Rae_util.Rng.int rng 24 in
      let data =
        if Rae_util.Rng.chance rng 0.2 then begin
          let b = Bytes.make bs (Char.chr (Rae_util.Rng.int rng 256)) in
          Bytes.blit_string "JRNL" 0 b 0 4 (* journal-magic collision *);
          b
        end
        else Bytes.make bs (Char.chr (Rae_util.Rng.int rng 256))
      in
      Journal.txn_write txn home data;
      written := home :: !written
    done;
    (match !written with
    | prior :: _ when Rae_util.Rng.chance rng 0.15 -> Journal.txn_revoke txn prior
    | _ -> ());
    Journal.commit j txn
  done;
  (disk, g)

let prop_destage_par_byte_equal =
  QCheck2.Test.make ~name:"parallel destage image = sequential destage image" ~count:10
    QCheck2.Gen.(pair ui64 (int_range 1 8))
    (fun (seed, ntxns) ->
      let disk, g = undestaged_image ~seed ~ntxns in
      let crashed = Disk.snapshot disk in
      let seq_n =
        match Journal.replay (Device.of_disk disk) g with
        | Ok n -> n
        | Error e -> QCheck2.Test.fail_reportf "sequential replay failed: %s" e
      in
      let seq_img = Disk.snapshot disk in
      Disk.restore disk crashed;
      let par_n =
        match Journal.replay ~pool:(Lazy.force pool4) (Device.of_disk disk) g with
        | Ok n -> n
        | Error e -> QCheck2.Test.fail_reportf "parallel replay failed: %s" e
      in
      let par_img = Disk.snapshot disk in
      if seq_n <> par_n then
        QCheck2.Test.fail_reportf "txn counts differ: seq %d, par %d (seed %Ld)" seq_n par_n seed;
      if seq_n = 0 then QCheck2.Test.fail_reportf "nothing to destage (seed %Ld)" seed;
      Array.iteri
        (fun i b ->
          if not (Bytes.equal b par_img.(i)) then
            QCheck2.Test.fail_reportf "block %d differs after destage (seed %Ld)" i seed)
        seq_img;
      true)

(* ---- checkpoint: background fold = synchronous fold ---- *)

(* Record a mutation trace against a commit-free base: the disk stays at
   S0, so the entries are exactly what a warm shadow folds. *)
let record_entries ~seed ~count =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:2048 () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:256 ()));
  let base =
    ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = max_int } dev)
  in
  let ops =
    List.filter
      (fun op -> not (Op.is_sync op))
      (Rae_workload.Workload.uniform (Rae_util.Rng.create seed) ~count)
  in
  let entries =
    List.filter Op.is_mutation ops
    |> List.mapi (fun seq op -> { Op.op; outcome = Base.exec base op; seq })
  in
  (dev, entries)

let fold_in_batches ck entries ~batch =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n do
    let j = min n (!i + batch) in
    Checkpoint.fold ck ~entries:(Array.to_list (Array.sub arr !i (j - !i))) ~next_seq:j;
    i := j
  done;
  n

let mk_ckpt ?(async = false) dev =
  let ck = Checkpoint.create ~shadow_checks:false ~fold_interval:1 dev in
  if async then Checkpoint.start_async_fold ck ~queue_cap:2;
  ok (Checkpoint.cut ck ~window:0 ~fds:[] ~next_seq:0 ~commit_seq:0L);
  ck

let prop_async_fold_equals_sync =
  QCheck2.Test.make ~name:"background fold = synchronous fold (seeded state)" ~count:12
    QCheck2.Gen.(triple ui64 (int_range 20 120) (int_range 2 9))
    (fun (seed, count, batch) ->
      let dev, entries = record_entries ~seed ~count in
      let sync = mk_ckpt dev in
      let n = fold_in_batches sync entries ~batch in
      let s_sh, s_cur = ok (Checkpoint.seed sync) in
      let async = mk_ckpt ~async:true dev in
      ignore (fold_in_batches async entries ~batch);
      let a_sh, a_cur = ok (Checkpoint.seed async) in
      Checkpoint.shutdown async;
      if s_cur <> n || a_cur <> n then
        QCheck2.Test.fail_reportf "cursors: sync %d, async %d, want %d (seed %Ld)" s_cur a_cur n
          seed;
      if not (Rae_core.Differential.shadow_states_equal s_sh a_sh) then
        QCheck2.Test.fail_reportf "seeded states diverge (seed %Ld, batch %d)" seed batch;
      true)

(* The warm-generation guard: a cut mid-stream discards the windows
   scheduled against the previous warm instance — whatever the worker's
   progress, the seeded state only ever reflects the new base plus the
   windows recorded after the cut.  Both interleavings (stale window
   folded into the old instance before the cut's quiesce, or discarded by
   it) must collapse to the same observable state. *)
let prop_cut_mid_fold_generation_guard =
  QCheck2.Test.make ~name:"cut mid background fold never leaks stale windows" ~count:12
    QCheck2.Gen.(triple ui64 (int_range 30 120) (int_range 25 75))
    (fun (seed, count, cut_pct) ->
      let dev, entries = record_entries ~seed ~count in
      let n = List.length entries in
      let k = max 1 (cut_pct * n / 100) in
      let pre = List.filteri (fun i _ -> i < k) entries
      and post = List.filteri (fun i _ -> i >= k) entries in
      let run ~async =
        let ck = mk_ckpt ~async dev in
        ignore (fold_in_batches ck pre ~batch:3);
        (* Re-base: quiesce + discard, bump the generation, cursor to k.
           The disk is still S0 (commit-free trace), so the cut is sound. *)
        ok (Checkpoint.cut ck ~window:0 ~fds:[] ~next_seq:k ~commit_seq:0L);
        List.iter
          (fun r -> Checkpoint.fold ck ~entries:[ r ] ~next_seq:(r.Op.seq + 1))
          post;
        let sh, cur = ok (Checkpoint.seed ck) in
        Checkpoint.shutdown ck;
        (sh, cur)
      in
      let s_sh, s_cur = run ~async:false in
      let a_sh, a_cur = run ~async:true in
      if s_cur <> a_cur then
        QCheck2.Test.fail_reportf "cursors differ: sync %d, async %d (seed %Ld)" s_cur a_cur seed;
      if not (Rae_core.Differential.shadow_states_equal s_sh a_sh) then
        QCheck2.Test.fail_reportf "post-cut seeded states diverge (seed %Ld, cut %d/%d)" seed k n;
      true)

(* ---- controller: par_domains is a pure latency knob ---- *)

let arm ids =
  Bug_registry.arm ~rng:(Rae_util.Rng.create 9L) (List.filter_map Bug_registry.find ids)

let mk_ctl ?policy ?config ?bugs () =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:2048 () in
  let dev = Device.of_disk disk in
  ignore (ok (Base.mkfs dev ~ninodes:256 ()));
  let base = ok (Base.mount ?config ?bugs dev) in
  (disk, Controller.make ?policy ~device:dev base)

let par_policy domains =
  {
    Controller.default_policy with
    Controller.ckpt_enabled = true;
    Controller.ckpt_fold_interval = 8;
    Controller.par_domains = domains;
  }

(* The cache-invalidation adversary (stale resolutions, dirent-index
   entries, symlink targets) interleaved with panics: every namespace
   mutation that could leave a warm-shadow fast-path cache stale, each
   followed by the lookup that would expose it, with seeded recoveries in
   between.  The "pwn" components trigger crafted-name-panic. *)
let adversary_ops =
  [
    Op.Mkdir (p "/a", 0o755);
    Op.Mkdir (p "/a/b", 0o755);
    Op.Create (p "/a/b/f", 0o644);
    Op.Lookup (p "/a/b/f");
    Op.Stat (p "/a/b");
    Op.Create (p "/pwn", 0o644) (* panic #1: recovery seeds mid-warm *);
    Op.Rename (p "/a/b", p "/a/c");
    Op.Lookup (p "/a/b/f") (* must miss: resolution moved *);
    Op.Lookup (p "/a/c/f");
    Op.Unlink (p "/a/c/f");
    Op.Lookup (p "/a/c/f") (* must miss: unlinked *);
    Op.Mkdir (p "/a/c/f", 0o755) (* same name, different kind *);
    Op.Stat (p "/a/c/f");
    Op.Unlink (p "/a/c/pwn") (* panic #2 (ENOENT path still trips the trigger) *);
    Op.Rmdir (p "/a/c/f");
    Op.Readdir (p "/a/c/f") (* must miss: removed *);
    Op.Readdir (p "/a/c");
    Op.Symlink ("/a/c", p "/ln");
    Op.Stat (p "/ln");
    Op.Unlink (p "/ln");
    Op.Symlink ("/nowhere", p "/ln");
    Op.Stat (p "/ln") (* must ENOENT through the replaced link *);
    Op.Create (p "/a/c/g", 0o644);
    Op.Lookup (p "/a/c/g");
  ]

let run_against_spec ctl ops =
  let sp = Spec.make () in
  List.iteri
    (fun i op ->
      let want = Spec.exec sp op in
      let got = Controller.exec ctl op in
      if not (Op.outcome_equal want got) then
        Alcotest.failf "op %d %s: spec %s, got %s" i (Op.to_string op)
          (Format.asprintf "%a" Op.pp_outcome want)
          (Format.asprintf "%a" Op.pp_outcome got))
    ops

let test_adversary_all_domain_counts () =
  (* par_domains in {1, 2, 4}: identical outcomes op by op, identical
     final trees, no cold fallbacks — with the invalidation adversary
     running across seeded recoveries.  A stale fast-path cache in the
     warm shadow (the generation guard's failure mode) surfaces here as
     a spec divergence after recovery. *)
  let snapshots =
    List.map
      (fun domains ->
        let _disk, ctl =
          mk_ctl ~policy:(par_policy domains)
            ~config:{ Base.default_config with Base.commit_interval = 16 }
            ~bugs:(arm [ "crafted-name-panic" ])
            ()
        in
        run_against_spec ctl adversary_ops;
        Alcotest.(check bool)
          (Printf.sprintf "recoveries happened (par=%d)" domains)
          true
          ((Controller.stats ctl).Controller.recoveries >= 1);
        (match Controller.checkpoint_stats ctl with
        | Some s -> Alcotest.(check int) "no cold fallback" 0 s.Checkpoint.fallbacks
        | None -> Alcotest.fail "checkpoint stats missing");
        Alcotest.(check (option Alcotest.string)) "not degraded" None (Controller.degraded ctl);
        let snap = ok (Rae_workload.Snapshot.capture ~exec:Controller.exec ctl) in
        Controller.shutdown ctl;
        snap)
      [ 1; 2; 4 ]
  in
  match snapshots with
  | base :: rest ->
      List.iteri
        (fun i s ->
          if not (Rae_workload.Snapshot.equal base s) then
            Alcotest.failf "final tree at par_domains=%d differs: %s"
              (List.nth [ 2; 4 ] i)
              (String.concat "; " (Rae_workload.Snapshot.diff base s)))
        rest
  | [] -> assert false

let test_seed_awaits_inflight_fold () =
  (* A long commit-free window folded in the background, then a panic:
     recovery's seed phase must await the queued/in-flight folds, so the
     async arm replays exactly the same Δ as the sync arm — and both
     report the same fold count.  Without the barrier the async arm's
     cursor (and hence its replay length) would depend on worker timing. *)
  let run domains =
    let _disk, ctl =
      mk_ctl ~policy:(par_policy domains)
        ~config:{ Base.default_config with Base.commit_interval = max_int }
        ~bugs:(arm [ "crafted-name-panic" ])
        ()
    in
    for i = 1 to 20 do
      ignore (ok (Controller.create ctl (p (Printf.sprintf "/f%d" i)) ~mode:0o644))
    done;
    ignore (ok (Controller.create ctl (p "/pwn") ~mode:0o644));
    Alcotest.(check int) "one recovery" 1 (Controller.stats ctl).Controller.recoveries;
    let r = match Controller.last_recovery ctl with Some r -> r | None -> Alcotest.fail "no report" in
    Alcotest.(check bool) "seeded" true r.Rae_core.Report.r_seeded;
    let s =
      match Controller.checkpoint_stats ctl with Some s -> s | None -> Alcotest.fail "no stats"
    in
    Alcotest.(check int) "no cold fallback" 0 s.Checkpoint.fallbacks;
    for i = 1 to 20 do
      Alcotest.(check bool) "file visible" true
        (Result.is_ok (Controller.lookup ctl (p (Printf.sprintf "/f%d" i))))
    done;
    Controller.shutdown ctl;
    (r.Rae_core.Report.r_replayed, s.Checkpoint.folds, s.Checkpoint.folded_ops)
  in
  let sync_replayed, sync_folds, sync_ops = run 1 in
  let async_replayed, async_folds, async_ops = run 2 in
  Alcotest.(check int) "same Δ replayed" sync_replayed async_replayed;
  Alcotest.(check int) "same fold count" sync_folds async_folds;
  Alcotest.(check int) "same ops folded" sync_ops async_ops;
  Alcotest.(check bool) "folds actually happened" true (async_folds >= 1)

let prop_controller_par_equals_spec =
  QCheck2.Test.make ~name:"par controller = spec under random panics" ~count:8
    QCheck2.Gen.(triple ui64 (int_range 60 150) (int_range 1 30))
    (fun (seed, count, nth) ->
      let bug () =
        Bug_registry.arm
          [
            {
              Bug_registry.id = "par-prop-panic";
              determinism = Bug_registry.Deterministic;
              trigger = Bug_registry.Nth_op_of_kind (Op.K_create, nth);
              consequence = Bug_registry.Panic;
              modeled_after = "property-test injection";
            };
          ]
      in
      let ops = Rae_workload.Workload.uniform (Rae_util.Rng.create seed) ~count in
      let sp = Spec.make () in
      let _disk, ctl =
        mk_ctl ~policy:(par_policy 4)
          ~config:{ Base.default_config with Base.commit_interval = 16 }
          ~bugs:(bug ()) ()
      in
      let fail fmt =
        Controller.shutdown ctl;
        QCheck2.Test.fail_reportf fmt
      in
      List.iter
        (fun op ->
          let want = Spec.exec sp op in
          let got = Controller.exec ctl op in
          if not (Op.outcome_equal want got) then
            fail "par=4 diverges from spec on %s (seed %Ld)" (Op.to_string op) seed)
        ops;
      if Controller.degraded ctl <> None then fail "degraded (seed %Ld)" seed;
      Controller.shutdown ctl;
      true)

(* ---- crash engine: verdict sets across pool sizes ---- *)

let sweep_fingerprint (s : Engine.stats) =
  ( s.Engine.s_workloads,
    s.Engine.s_points,
    s.Engine.s_consistent,
    s.Engine.s_repaired,
    List.sort compare
      (List.map
         (fun d -> (d.Engine.d_label, d.Engine.d_key, d.Engine.d_reason))
         s.Engine.s_diverging) )

let test_sweep_verdicts_equal_across_domains () =
  let seq = Engine.sweep_bounded ~max_workloads:40 () in
  Alcotest.(check int) "workloads swept" 40 seq.Engine.s_workloads;
  Alcotest.(check bool) "points enumerated" true (seq.Engine.s_points > 0);
  with_pool 2 (fun p2 ->
      let par2 = Engine.sweep_bounded ~pool:p2 ~max_workloads:40 () in
      Alcotest.(check bool) "par=2 verdicts equal" true
        (sweep_fingerprint seq = sweep_fingerprint par2));
  let par4 = Engine.sweep_bounded ~pool:(Lazy.force pool4) ~max_workloads:40 () in
  Alcotest.(check bool) "par=4 verdicts equal" true
    (sweep_fingerprint seq = sweep_fingerprint par4);
  Alcotest.(check int) "no divergence in the bounded space" 0
    (List.length par4.Engine.s_diverging)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_par"
    [
      ( "pool",
        [
          Alcotest.test_case "size 1 = sequential ascending" `Quick test_pool_size_one_is_sequential;
          Alcotest.test_case "every index exactly once" `Quick test_pool_every_index_exactly_once;
          Alcotest.test_case "map_array" `Quick test_pool_map_array;
          Alcotest.test_case "run thunks" `Quick test_pool_run_thunks;
          Alcotest.test_case "child exception re-raised" `Quick test_pool_reraises_child_exception;
          Alcotest.test_case "shutdown degrades to sequential" `Quick test_pool_shutdown_degrades;
        ] );
      ("fsck", [ q prop_fsck_par_equals_seq; Alcotest.test_case "clean image" `Quick test_fsck_par_clean_image ]);
      ("destage", [ q prop_destage_par_byte_equal ]);
      ( "ckpt-fold",
        [ q prop_async_fold_equals_sync; q prop_cut_mid_fold_generation_guard ] );
      ( "controller",
        [
          Alcotest.test_case "invalidation adversary, par in {1,2,4}" `Quick
            test_adversary_all_domain_counts;
          Alcotest.test_case "seed awaits in-flight background fold" `Quick
            test_seed_awaits_inflight_fold;
          q prop_controller_par_equals_spec;
        ] );
      ( "crash-sweep",
        [
          Alcotest.test_case "verdict sets equal across pool sizes" `Slow
            test_sweep_verdicts_equal_across_domains;
        ] );
    ]
