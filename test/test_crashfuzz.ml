(* Crash fuzzing: power failures (with partial, reordered destaging) at
   arbitrary points in arbitrary workloads must always leave an image that
   journal replay brings back to structural consistency, with all fsynced
   data intact.  This underpins RAE's trust in S0: the contained reboot is
   only sound if the on-disk state is always recoverable.

   The random probes here complement the systematic sweeps in
   lib/crash (test_crash.ml): the engine enumerates every persistence
   boundary of bounded workloads, this file shotguns arbitrary crash
   subsets into big generated ones, plus the engine-backed property that
   every enumerated crash image of a random bounded workload recovers to
   a legal durable state. *)

open Rae_vfs
module Base = Rae_basefs.Base
module Disk = Rae_block.Disk
module Device = Rae_block.Device
module Crashsim = Rae_block.Crashsim
module Fsck = Rae_fsck.Fsck
module W = Rae_workload.Workload

let p = Path.parse_exn
let ok = Result.get_ok
let bs = Rae_format.Layout.block_size

let with_crash_run ~seed ~crash_at ~profile k =
  let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:4096 () in
  let raw = Device.of_disk disk in
  ignore (ok (Base.mkfs raw ~ninodes:512 ()));
  let sim, dev = Crashsim.create ~rng:(Rae_util.Rng.create seed) raw in
  let b = ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = 8 } dev) in
  let ops = W.ops profile (Rae_util.Rng.create seed) ~count:(crash_at + 50) in
  (try
     List.iteri
       (fun i op ->
         if i = crash_at then raise Exit;
         ignore (Base.exec b op))
       ops
   with Exit -> ());
  k sim raw

let prop_crash_consistency =
  QCheck2.Test.make ~name:"any partial crash -> replay -> fsck clean" ~count:40
    QCheck2.Gen.(
      triple ui64 (int_range 1 250)
        (oneofl [ W.Varmail; W.Fileserver; W.Metadata; W.Multiclient ]))
    (fun (seed, crash_at, profile) ->
      with_crash_run ~seed ~crash_at ~profile (fun sim raw ->
          Crashsim.crash_partial sim;
          let b2 = Result.get_ok (Base.mount raw) in
          ignore (Result.get_ok (Base.unmount b2));
          let report = Fsck.check_device raw in
          if Fsck.clean report then true
          else
            QCheck2.Test.fail_reportf "seed=%Ld crash@%d %s: %s" seed crash_at
              (W.profile_name profile)
              (String.concat "; "
                 (List.map (fun f -> Format.asprintf "%a" Fsck.pp_finding f) (Fsck.errors report)))))

let prop_fsynced_data_durable =
  QCheck2.Test.make ~name:"fsynced content survives any later crash" ~count:30
    QCheck2.Gen.(pair ui64 (int_range 0 120))
    (fun (seed, extra_ops) ->
      let disk = Disk.create ~latency:Disk.zero_latency ~block_size:bs ~nblocks:4096 () in
      let raw = Device.of_disk disk in
      ignore (ok (Base.mkfs raw ~ninodes:512 ()));
      let sim, dev = Crashsim.create ~rng:(Rae_util.Rng.create seed) raw in
      let b = ok (Base.mount ~config:{ Base.default_config with Base.commit_interval = 8 } dev) in
      (* The durable payload: written and fsynced before the churn.  The
         uniform generator's path universe cannot touch "/durable". *)
      let fd = ok (Base.openf b (p "/durable") Types.flags_create) in
      ignore (ok (Base.pwrite b fd ~off:0 "promised to survive"));
      ignore (ok (Base.fsync b fd));
      ignore (ok (Base.close b fd));
      (* Unsynced churn, then a hostile crash. *)
      let ops = W.uniform (Rae_util.Rng.create seed) ~count:extra_ops in
      List.iter (fun op -> ignore (Base.exec b op)) ops;
      Crashsim.crash_partial sim;
      let b2 = Result.get_ok (Base.mount raw) in
      let fd = Result.get_ok (Base.openf b2 (p "/durable") Types.flags_ro) in
      let data = Result.get_ok (Base.pread b2 fd ~off:0 ~len:100) in
      if data = "promised to survive" then true
      else QCheck2.Test.fail_reportf "seed=%Ld: fsynced data lost, read %S" seed data)

let prop_double_crash =
  (* Crash during the post-crash recovery mount itself: replay must be
     idempotent, a second mount must still converge.  The partial crash
     must also publish a parseable replay key (exact-replay determinism
     is covered in test_crash.ml). *)
  QCheck2.Test.make ~name:"crash during replay -> second replay converges" ~count:25
    QCheck2.Gen.(pair ui64 (int_range 1 150))
    (fun (seed, crash_at) ->
      with_crash_run ~seed ~crash_at ~profile:W.Varmail (fun sim raw ->
          Crashsim.crash_partial sim;
          (* First recovery attempt runs against a crash-simulated device
             that fails again mid-replay: emulate by buffering its writes
             and dropping a random subset. *)
          let sim2, dev2 = Crashsim.create ~rng:(Rae_util.Rng.create (Int64.add seed 1L)) raw in
          (match Base.mount dev2 with
          | Ok b -> ( try ignore (Base.unmount b) with _ -> ())
          | Error _ -> ());
          Crashsim.crash_partial sim2;
          (match Crashsim.last_key sim2 with
          | None -> QCheck2.Test.fail_report "crash_partial recorded no key"
          | Some key ->
              if Crashsim.parse_partial_key key = None then
                QCheck2.Test.fail_reportf "unparseable crash key %S" key);
          (* Second, uninterrupted recovery. *)
          let b2 = Result.get_ok (Base.mount raw) in
          ignore (Result.get_ok (Base.unmount b2));
          Fsck.clean (Fsck.check_device raw)))

let prop_enumerated_bounded =
  (* The engine-backed property: EVERY enumerated crash image (prefix and
     reordered-subset points alike) of a random bounded workload, after
     mount + journal replay + fsck, is shadow-equivalent to a legal
     durable boundary of that workload's history. *)
  let sequences = Array.of_list (Rae_crash.Bounded.all ()) in
  QCheck2.Test.make ~name:"every enumerated crash image recovers to a legal state" ~count:30
    QCheck2.Gen.(int_bound (Array.length sequences - 1))
    (fun idx ->
      let ops = sequences.(idx) in
      let stats =
        Rae_crash.Engine.sweep_ops ~label:(Rae_crash.Bounded.label ops) ops
      in
      match stats.Rae_crash.Engine.s_diverging with
      | [] -> stats.Rae_crash.Engine.s_points > 0
      | d :: _ ->
          QCheck2.Test.fail_reportf "workload %s diverges at %s: %s"
            d.Rae_crash.Engine.d_label d.Rae_crash.Engine.d_key d.Rae_crash.Engine.d_reason)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "rae_crashfuzz"
    [
      ( "crash-fuzz",
        [
          q prop_crash_consistency;
          q prop_fsynced_data_durable;
          q prop_double_crash;
          q prop_enumerated_bounded;
        ] );
    ]
