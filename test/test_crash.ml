(* The crash-consistency scenario engine (lib/crash).

   Deterministic end-to-end coverage: the subset-key codec, bounded
   workload generation/dedup, sweeps over bounded and targeted workloads
   (0 diverging), crash-during-recovery and crash-during-checkpoint-fold
   sweeps, the seeded-divergence fixture (a device that ignores flush
   barriers MUST be caught), greedy minimization, key replay, and the
   postmortem bundles written for diverging images. *)

module Crashsim = Rae_block.Crashsim
module Recording = Rae_crash.Recording
module Enumerate = Rae_crash.Enumerate
module Oracle = Rae_crash.Oracle
module Engine = Rae_crash.Engine
module Bounded = Rae_crash.Bounded
module Blackbox = Rae_obs.Blackbox
module Op = Rae_vfs.Op
module Path = Rae_vfs.Path

let p = Path.parse_exn

let fixture_ops = [ Op.Create (p "/a", 0o644); Op.Sync ]

(* ---- subset-key codec ---- *)

let test_mask_roundtrip () =
  List.iter
    (fun n ->
      let mask = Array.init n (fun i -> i mod 3 = 0) in
      let hex = Crashsim.mask_to_hex mask in
      match Crashsim.mask_of_hex ~n hex with
      | Some back -> Alcotest.(check (array bool)) "roundtrip" mask back
      | None -> Alcotest.failf "mask_of_hex rejected its own encoding (n=%d %s)" n hex)
    [ 0; 1; 3; 4; 7; 16; 33 ]

let test_partial_key_roundtrip () =
  let mask = [| true; false; false; true; true |] in
  let key = Crashsim.partial_key mask in
  (match Crashsim.parse_partial_key key with
  | Some back -> Alcotest.(check (array bool)) "roundtrip" mask back
  | None -> Alcotest.fail "parse_partial_key rejected partial_key output");
  Alcotest.(check bool) "garbage rejected" true (Crashsim.parse_partial_key "5:zz" = None);
  Alcotest.(check bool) "length mismatch rejected" true
    (Crashsim.parse_partial_key "9:01" = None)

let test_crash_partial_key_replay () =
  (* Same workload, same key => byte-identical crash image. *)
  let run () = Recording.record ~commit_interval:4 fixture_ops in
  let t1 = run () and t2 = run () in
  Alcotest.(check int) "same stream length" (Array.length t1.Recording.events)
    (Array.length t2.Recording.events);
  let point = Printf.sprintf "p:%d" (Array.length t1.Recording.events) in
  let img t =
    match Enumerate.apply t point with
    | Ok disk -> Rae_block.Disk.snapshot disk
    | Error msg -> Alcotest.failf "apply: %s" msg
  in
  Alcotest.(check bool) "identical final images" true (img t1 = img t2)

(* ---- bounded generation ---- *)

let test_bounded_dedup () =
  let all = Bounded.all () in
  let n = List.length all in
  Alcotest.(check bool) "space is non-trivial" true (n > 200);
  let keys = List.map Bounded.canonical_key all in
  Alcotest.(check int) "canonical keys are unique" n
    (List.length (List.sort_uniq compare keys));
  (* Footprint-equivalent sequences collapse: create /a ~ create /b. *)
  Alcotest.(check string) "renaming collapses"
    (Bounded.canonical_key [ Op.Create (p "/a", 0o644) ])
    (Bounded.canonical_key [ Op.Create (p "/b", 0o644) ]);
  let sample = Bounded.sample ~max:24 in
  Alcotest.(check int) "sample respects the budget" 24 (List.length sample)

(* ---- recording ---- *)

let test_recording_boundaries () =
  let t = Recording.record ~commit_interval:2 fixture_ops in
  Alcotest.(check bool) "stream captured" true (Recording.write_count t > 0);
  Alcotest.(check bool) "at least fresh + final boundary" true
    (Array.length t.Recording.boundaries >= 2);
  let last = t.Recording.boundaries.(Array.length t.Recording.boundaries - 1) in
  Alcotest.(check int) "final boundary covers all ops" (Array.length t.Recording.ops)
    last.Recording.b_op;
  (* Boundary events are monotonic. *)
  Array.iteri
    (fun i b ->
      if i > 0 then
        Alcotest.(check bool) "monotonic" true
          (b.Recording.b_event >= t.Recording.boundaries.(i - 1).Recording.b_event))
    t.Recording.boundaries

(* ---- sweeps ---- *)

let check_no_divergence name stats =
  Alcotest.(check int)
    (name ^ ": no diverging points")
    0
    (List.length stats.Engine.s_diverging);
  Alcotest.(check bool) (name ^ ": swept something") true (stats.Engine.s_points > 0)

let test_sweep_bounded () =
  check_no_divergence "bounded" (Engine.sweep_bounded ~max_workloads:12 ())

let test_sweep_targeted () =
  check_no_divergence "targeted"
    (Engine.sweep_targeted ~count:24 ~seeds:[ 3L ] ~profiles:[ Rae_workload.Workload.Varmail ] ())

let test_sweep_recovery_cold () =
  let stats = Engine.sweep_recovery ~count:16 ~ckpt:false () in
  check_no_divergence "recovery-cold" stats

let test_sweep_recovery_ckpt () =
  (* sweep_recovery itself asserts the run seeded from the checkpoint. *)
  let stats = Engine.sweep_recovery ~count:16 ~ckpt:true () in
  check_no_divergence "recovery-ckpt" stats

(* ---- the seeded divergence ---- *)

let test_fixture_detected () =
  let stats = Engine.sweep_ops ~barriers:false ~label:"fixture" fixture_ops in
  Alcotest.(check bool) "barrier-ignoring device caught" true
    (stats.Engine.s_diverging <> [])

let test_fixture_minimized () =
  match Engine.minimize ~barriers:false fixture_ops with
  | None -> Alcotest.fail "fixture did not diverge"
  | Some ops ->
      Alcotest.(check bool) "reproducer within 3 ops" true (List.length ops <= 3);
      Alcotest.(check bool) "reproducer still diverges" true
        (Engine.first_divergence ~barriers:false ops <> None)

let test_fixture_repro_by_key () =
  match Engine.first_divergence ~barriers:false fixture_ops with
  | None -> Alcotest.fail "fixture did not diverge"
  | Some d -> (
      match Engine.repro ~barriers:false ~key:d.Engine.d_key fixture_ops with
      | Error msg -> Alcotest.failf "repro: %s" msg
      | Ok o ->
          Alcotest.(check bool) "same key, same verdict" true (Oracle.is_diverging o);
          (* And with barriers honoured the very same key must be judged
             against the *barriered* plan — parse or reject cleanly, never
             crash. *)
          (match Engine.repro ~barriers:true ~key:d.Engine.d_key fixture_ops with
          | Ok _ | Error _ -> ()))

let test_oracle_verdict_on_clean_point () =
  let t = Recording.record fixture_ops in
  let final = Printf.sprintf "p:%d" (Array.length t.Recording.events) in
  match Engine.repro ~key:final fixture_ops with
  | Error msg -> Alcotest.failf "repro: %s" msg
  | Ok o -> (
      match o.Oracle.o_verdict with
      | Oracle.Consistent -> ()
      | v -> Alcotest.failf "final image should be consistent, got %s" (Oracle.verdict_to_string v))

(* ---- postmortem bundles ---- *)

let test_divergence_bundles () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rae_crash_bundles" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  let cfg = { Engine.default_config with Engine.bundle_dir = Some dir } in
  let stats = Engine.sweep_ops ~cfg ~barriers:false ~label:"fixture" fixture_ops in
  let n_div = List.length stats.Engine.s_diverging in
  Alcotest.(check bool) "fixture diverged" true (n_div > 0);
  let bundles = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check int) "one bundle per divergence" n_div (List.length bundles);
  List.iter
    (fun f ->
      match Blackbox.check_file (Filename.concat dir f) with
      | Ok summary ->
          Alcotest.(check string) "crash kind" "crash" summary.Blackbox.s_kind
      | Error errs -> Alcotest.failf "%s: %s" f (String.concat "; " errs))
    bundles

let () =
  Alcotest.run "rae_crash"
    [
      ( "codec",
        [
          Alcotest.test_case "mask roundtrip" `Quick test_mask_roundtrip;
          Alcotest.test_case "partial key roundtrip" `Quick test_partial_key_roundtrip;
          Alcotest.test_case "key replay determinism" `Quick test_crash_partial_key_replay;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "canonical dedup" `Quick test_bounded_dedup;
          Alcotest.test_case "recording boundaries" `Quick test_recording_boundaries;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "bounded sweep" `Slow test_sweep_bounded;
          Alcotest.test_case "targeted sweep" `Slow test_sweep_targeted;
          Alcotest.test_case "crash mid-recovery" `Slow test_sweep_recovery_cold;
          Alcotest.test_case "crash mid-ckpt-fold" `Slow test_sweep_recovery_ckpt;
        ] );
      ( "fixture",
        [
          Alcotest.test_case "divergence detected" `Quick test_fixture_detected;
          Alcotest.test_case "minimized to <= 3 ops" `Slow test_fixture_minimized;
          Alcotest.test_case "repro by key" `Quick test_fixture_repro_by_key;
          Alcotest.test_case "clean point is consistent" `Quick test_oracle_verdict_on_clean_point;
          Alcotest.test_case "postmortem bundles" `Quick test_divergence_bundles;
        ] );
    ]
