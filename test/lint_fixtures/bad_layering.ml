(* Fixture for the layering rule: the test config forbids the fixtures
   library from depending on the journal layer. *)

let probe dev geo = Rae_journal.Journal.attach dev geo
