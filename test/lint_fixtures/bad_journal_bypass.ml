(* persist-order fixture: a raw device write with no journal transaction
   anywhere in sight — the journal-bypass case. *)
module Device = Rae_block.Device

let bypass dev blk data = Device.write dev blk data
