(* Negative fixture: no rule fires here. *)

let add a b = a + b

let safe_head = function [] -> None | x :: _ -> Some x

let guarded (h : (string, int) Hashtbl.t) k =
  match Hashtbl.find_opt h k with Some v -> v | None -> 0
