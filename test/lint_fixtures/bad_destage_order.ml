(* persist-order fixture: opens a journal transaction, then destages and
   flushes BEFORE the commit record — the commit-before-destage and
   barrier-reorder cases. *)
module Journal = Rae_journal.Journal
module Device = Rae_block.Device

let destage_too_early j dev blk data =
  let txn = Journal.begin_txn j in
  Journal.txn_write txn blk data;
  Device.write dev blk data;
  Device.flush dev;
  Journal.commit j txn
