(* domain-safety fixture: a toplevel mutable cell written, unguarded, by
   a definition the fixture config declares as a parallel-region root. *)

let shared_hits : int ref = ref 0

let fold_entry items = List.iter (fun _ -> incr shared_hits) items
