(* Fixture for the no-swallow rule: catch-all handlers over bodies that
   can raise the (test-configured) runtime-error signal [Boom]. *)

exception Boom of string

let detonate () = raise (Boom "fixture")

(* Fires: the body raises the signal directly. *)
let swallow_inline () = try raise (Boom "inline") with _ -> ()

(* Fires: the signal is reachable through the call to [detonate]. *)
let swallow_via_call () = try detonate () with _ -> 0

(* Fires: match-with-exception catch-all is a try in disguise. *)
let swallow_match () = match detonate () with n -> n | exception _ -> -1

(* Does not fire: only the intended exception is matched. *)
let specific () = try detonate () with Boom _ -> 0

(* Does not fire: the catch-all re-raises, so nothing is absorbed. *)
let cleanup_and_reraise () =
  try detonate ()
  with e ->
    print_endline "cleanup";
    raise e
