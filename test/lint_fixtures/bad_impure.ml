(* Fixture for the shadow-purity rule: this unit is configured as a
   read-path root, yet it reaches Device.write. *)

module Device = Rae_block.Device

let scribble dev block data = Device.write dev block data

let indirect dev block data = scribble dev block data

(* Does not fire: reading is what the read path is for. *)
let observe dev block = Device.read dev block
