(* Fixture for the shadow-purity rule, transitive case: the sink is only
   reachable through a call into another unit. *)

let sneaky dev block data = Bad_impure.scribble dev block data
