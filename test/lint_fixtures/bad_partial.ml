(* Fixture for the partial-call rule: one partial stdlib call per
   definition, plus a handled Hashtbl.find that must not fire. *)

let first (l : int list) = List.hd l

let rest (l : int list) = List.tl l

let third (l : int list) = List.nth l 2

let force (o : int option) = Option.get o

let lookup (h : (string, int) Hashtbl.t) k = Hashtbl.find h k

(* Does not fire: Not_found is handled at the call site. *)
let lookup_handled (h : (string, int) Hashtbl.t) k =
  try Hashtbl.find h k with Not_found -> 0
