(* phase-order fixture: a phase marker invoked out of the declared order
   (and once with a name that is not a phase at all). *)

let phase name f =
  ignore (name : string);
  f ()

let recover_bad () =
  phase "contained-reboot" (fun () -> ());
  phase "seed" (fun () -> ());
  phase "shadow-attach" (fun () -> ());
  phase "warp-core" (fun () -> ())
