(* Fixture for the poly-compare rule: polymorphic compare/equality
   applied to on-disk structures. *)

module Superblock = Rae_format.Superblock
module Inode = Rae_format.Inode
module Dirent = Rae_format.Dirent

let same_sb (a : Superblock.t) (b : Superblock.t) = a = b

let cmp_inode (a : Inode.t) (b : Inode.t) = compare a b

let sort_entries (es : Dirent.entry list) = List.sort compare es

(* Does not fire: ints are not on-disk structures. *)
let max_ok (a : int) (b : int) = max a b
