(* Crash-consistency study driver: sweep the bounded/targeted/recovery
   crash-point space, replay one crash point by key, or minimize a
   diverging workload.  The fixture mode (--no-barriers) models a device
   that ignores flush barriers — the seeded divergence the engine must
   detect, used to validate the oracle end to end. *)

open Cmdliner
module Engine = Rae_crash.Engine
module Oracle = Rae_crash.Oracle

let fixture_ops =
  [ Rae_vfs.Op.Create (Rae_vfs.Path.parse_exn "/a", 0o644); Rae_vfs.Op.Sync ]

let print_stats name stats =
  Format.printf "%-18s %a@." name Engine.pp_stats stats;
  List.iter
    (fun d ->
      Format.printf "  diverging %s at %s: %s@." d.Engine.d_label d.Engine.d_key
        d.Engine.d_reason)
    (List.rev stats.Engine.s_diverging)

let run quick bounded_max targeted_count bundle_dir no_barriers repro_key minimize =
  let cfg =
    {
      Engine.default_config with
      Engine.bundle_dir;
      prefix_stride = (if quick then 2 else 1);
      samples_per_epoch = (if quick then 6 else 12);
    }
  in
  match (repro_key, minimize) with
  | Some key, _ ->
      let ops = fixture_ops in
      (match Engine.repro ~barriers:(not no_barriers) ~key ops with
      | Ok o ->
          Format.printf "%s -> %s@." o.Oracle.o_key (Oracle.verdict_to_string o.Oracle.o_verdict);
          if Oracle.is_diverging o then 1 else 0
      | Error msg ->
          Format.eprintf "repro failed: %s@." msg;
          2)
  | None, true -> (
      let ops = fixture_ops in
      match Engine.minimize ~cfg ~barriers:(not no_barriers) ops with
      | Some min_ops ->
          Format.printf "minimized to %d op(s): %s@." (List.length min_ops)
            (Engine.render_ops min_ops);
          0
      | None ->
          Format.printf "workload never diverges; nothing to minimize@.";
          0)
  | None, false ->
      let stats = ref Engine.empty_stats in
      let add name s =
        print_stats name s;
        stats := Engine.merge !stats s
      in
      if no_barriers then
        add "fixture" (Engine.sweep_ops ~cfg ~barriers:false ~label:"fixture" fixture_ops)
      else begin
        add "bounded" (Engine.sweep_bounded ~cfg ~max_workloads:bounded_max ());
        add "targeted"
          (Engine.sweep_targeted ~cfg ~count:targeted_count
             ~seeds:(if quick then [ 1L ] else [ 1L; 2L ])
             ());
        add "recovery-cold" (Engine.sweep_recovery ~cfg ~ckpt:false ());
        add "recovery-ckpt" (Engine.sweep_recovery ~cfg ~ckpt:true ())
      end;
      let s = !stats in
      Format.printf "total              %a@." Engine.pp_stats s;
      if s.Engine.s_diverging = [] then 0 else 1

let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Thinned sweep (CI budget).")

let bounded_max =
  Arg.(value & opt int 24 & info [ "bounded" ] ~docv:"N" ~doc:"Bounded workloads to sweep.")

let targeted_count =
  Arg.(value & opt int 40 & info [ "count" ] ~docv:"N" ~doc:"Ops per targeted workload.")

let bundle_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundle-dir" ] ~docv:"DIR" ~doc:"Write a postmortem bundle per divergence.")

let no_barriers =
  Arg.(
    value & flag
    & info [ "no-barriers" ]
        ~doc:"Enumerate as if the device ignored flush barriers (seeded-divergence fixture).")

let repro_key =
  Arg.(
    value
    & opt (some string) None
    & info [ "repro" ] ~docv:"KEY" ~doc:"Replay one crash point of the fixture workload by key.")

let minimize =
  Arg.(value & flag & info [ "minimize" ] ~doc:"Greedy-minimize the fixture workload.")

let cmd =
  Cmd.v
    (Cmd.info "crashstudy_rfs"
       ~doc:"B3-style crash-consistency sweep over rfs (bounded, targeted, crash-mid-recovery)")
    Term.(
      const run $ quick $ bounded_max $ targeted_count $ bundle_dir $ no_barriers $ repro_key
      $ minimize)

let () = exit (Cmd.eval' cmd)
