(* blackbox_rfs: validate, inspect and compare postmortem black-box
   bundles written by the RAE controller.

   Default mode prints a one-line summary per bundle; --print dumps the
   re-serialized (pretty, key-normalized) JSON; --check validates every
   bundle against the schema and exits non-zero on the first invalid one
   (the CI hook); --diff compares two bundles field by field. *)

open Cmdliner
module Blackbox = Rae_obs.Blackbox
module Jsonx = Rae_obs.Jsonx

let load path =
  match Blackbox.read_file path with
  | Error msg ->
      Printf.eprintf "blackbox_rfs: %s: %s\n" path msg;
      exit 1
  | Ok data -> (
      match Jsonx.parse data with
      | Error msg ->
          Printf.eprintf "blackbox_rfs: %s: JSON parse error: %s\n" path msg;
          exit 1
      | Ok json -> json)

let check_one ~quiet path =
  match Blackbox.check_file path with
  | Ok summary ->
      if not quiet then Format.printf "%a@." Blackbox.pp_summary summary;
      true
  | Error violations ->
      Printf.eprintf "blackbox_rfs: %s: INVALID\n" path;
      List.iter (fun v -> Printf.eprintf "  - %s\n" v) violations;
      false

(* A directory argument stands for every bundle in it, oldest first. *)
let expand path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.filter_map (fun name ->
           if String.starts_with ~prefix:"blackbox-" name && Filename.check_suffix name ".json"
           then Some (Filename.concat path name)
           else None)
  else [ path ]

let run check print diff paths =
  let paths = List.concat_map expand paths in
  match (diff, paths) with
  | true, [ a; b ] -> (
      match Blackbox.diff (load a) (load b) with
      | [] ->
          Printf.printf "bundles are identical\n";
          0
      | lines ->
          List.iter (fun l -> Printf.printf "%s\n" l) lines;
          1)
  | true, _ ->
      Printf.eprintf "blackbox_rfs: --diff needs exactly two bundle files\n";
      2
  | false, [] ->
      Printf.eprintf "blackbox_rfs: no bundle files given\n";
      2
  | false, paths ->
      if print then begin
        List.iter (fun p -> print_string (Jsonx.to_string ~pretty:true (load p) ^ "\n")) paths;
        0
      end
      else begin
        (* Summary and --check are the same walk — every bundle is
           validated and every violation reported; --check only makes
           the intent explicit at call sites (CI). *)
        let ok = List.fold_left (fun acc p -> check_one ~quiet:check p && acc) true paths in
        if ok then 0 else 1
      end

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Validate each bundle against the schema; exit 1 if any is invalid (CI mode).")

let print_arg =
  Arg.(value & flag & info [ "print" ] ~doc:"Pretty-print each bundle's JSON instead of a summary.")

let diff_arg =
  Arg.(
    value & flag
    & info [ "diff" ] ~doc:"Compare exactly two bundles field by field; exit 1 if they differ.")

let paths_arg = Arg.(value & pos_all file [] & info [] ~docv:"BUNDLE")

let cmd =
  Cmd.v
    (Cmd.info "blackbox_rfs" ~doc:"Validate, print and diff RAE postmortem black-box bundles")
    Term.(const run $ check_arg $ print_arg $ diff_arg $ paths_arg)

let () = exit (Cmd.eval' cmd)
