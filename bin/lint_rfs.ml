(* lint_rfs: static-analysis gate over the repo's own typed ASTs
   (dune-emitted .cmt files).  Exit status 0 = clean, 1 = findings,
   2 = no cmt files readable / bad baseline.

   Run from the repo root after `dune build`, or via the dune alias:
     dune build @lint *)

open Cmdliner
module Lint = Rae_lint

let default_dirs () =
  if Sys.file_exists "_build/default/lib" then [ "_build/default/lib" ]
  else if Sys.file_exists "lib" then [ "lib" ]
  else [ "." ]

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let run dirs baseline_path write_baseline update_baseline format json_out domain_report metrics
    quiet =
  let dirs = if dirs = [] then default_dirs () else dirs in
  let baseline, bad_lines =
    match baseline_path with Some p -> Lint.Baseline.load p | None -> ([], [])
  in
  List.iter (Printf.eprintf "lint_rfs: malformed baseline line ignored: %s\n") bad_lines;
  (* When regenerating the baseline, run without suppression so current
     findings are captured verbatim. *)
  let regen = write_baseline || update_baseline in
  let effective_baseline = if regen then [] else baseline in
  match Lint.Engine.run ~baseline:effective_baseline ~dirs () with
  | Error msg ->
      Printf.eprintf "lint_rfs: %s\n" msg;
      exit 2
  | Ok result ->
      List.iter (Printf.eprintf "lint_rfs: skipped %s\n") result.Lint.Engine.skipped;
      (match domain_report with
      | None -> ()
      | Some path ->
          let json =
            Rae_obs.Jsonx.to_string ~pretty:true (Lint.Domsafety.to_json result.Lint.Engine.domain)
          in
          if path = "-" then print_endline json else write_file path (json ^ "\n"));
      if regen then begin
        let path = Option.value baseline_path ~default:"lint.baseline" in
        let next = Lint.Baseline.of_findings result.Lint.Engine.kept in
        write_file path (Lint.Baseline.to_string next);
        if update_baseline then begin
          let added, removed = Lint.Baseline.diff ~prev:baseline ~next in
          List.iter
            (fun e -> Printf.printf "lint_rfs: + %s\n" (Lint.Baseline.entry_to_line e))
            added;
          List.iter
            (fun e -> Printf.printf "lint_rfs: - %s\n" (Lint.Baseline.entry_to_line e))
            removed;
          Printf.printf "lint_rfs: baseline %s: %d entries (%d added, %d removed)\n" path
            (List.length next) (List.length added) (List.length removed)
        end
        else
          Printf.printf "lint_rfs: wrote %d entries to %s\n" (List.length result.Lint.Engine.kept)
            path;
        exit 0
      end;
      if not quiet then begin
        match format with
        | "sarif" ->
            print_endline (Lint.Sarif.to_string ~rules:Lint.Rules.all_rules result.Lint.Engine.kept)
        | _ -> List.iter (fun f -> print_endline (Lint.Finding.to_human f)) result.Lint.Engine.kept
      end;
      List.iter
        (fun e ->
          Printf.eprintf "lint_rfs: unused baseline entry: %s\n" (Lint.Baseline.entry_to_line e))
        result.Lint.Engine.unused;
      let s = result.Lint.Engine.stats in
      if (not quiet) && format <> "sarif" then
        Printf.printf
          "lint_rfs: %d findings (%d suppressed, %d unused baseline entries), %d rules over %d \
           units (%d cmt files) in %.3fs\n"
          s.Lint.Engine.findings s.Lint.Engine.suppressed s.Lint.Engine.unused_baseline
          s.Lint.Engine.rules_run s.Lint.Engine.units_loaded s.Lint.Engine.files_scanned
          s.Lint.Engine.wall_s;
      (match json_out with
      | None -> ()
      | Some "-" -> print_endline (Lint.Engine.to_json result)
      | Some path -> write_file path (Lint.Engine.to_json result ^ "\n"));
      if metrics then begin
        let registry = Rae_obs.Metrics.create () in
        Lint.Engine.register_obs registry s;
        print_string (Rae_obs.Metrics.to_prometheus registry)
      end;
      exit (if Lint.Engine.has_errors result then 1 else 0)

let dirs =
  Arg.(value & pos_all string [] & info [] ~docv:"DIR" ~doc:"Directories to scan for .cmt files.")

let baseline =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Suppression baseline file.")

let write_baseline =
  Arg.(
    value & flag
    & info [ "write-baseline" ]
        ~doc:"Write current findings to the baseline file (default lint.baseline) and exit.")

let update_baseline =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Regenerate the baseline file from current findings, printing a diff against the \
           previous contents, and exit.")

let format =
  Arg.(
    value
    & opt (enum [ ("human", "human"); ("sarif", "sarif") ]) "human"
    & info [ "format" ] ~docv:"FMT" ~doc:"Findings output format: $(b,human) or $(b,sarif).")

let json_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write findings and stats as JSON ('-' for stdout).")

let domain_report =
  Arg.(
    value
    & opt (some string) None
    & info [ "domain-report" ] ~docv:"FILE"
        ~doc:
          "Write the domain-safety catalogue (every mutable cell reachable from the parallel \
           regions, classified) as JSON ('-' for stdout).")

let metrics =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print rae_obs metrics (Prometheus text) after the run.")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress human-readable output.")

let cmd =
  Cmd.v
    (Cmd.info "lint_rfs" ~doc:"Static-analysis safety gate for the shadow/base split")
    Term.(
      const run $ dirs $ baseline $ write_baseline $ update_baseline $ format $ json_out
      $ domain_report $ metrics $ quiet)

let () = exit (Cmd.eval cmd)
