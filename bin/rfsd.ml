(* rfsd: the rfs serving daemon.

   Mounts an in-memory rfs image behind the RAE controller and serves it
   over a Unix domain socket with the rae_srv wire protocol.  The event
   loop is single-threaded select(2): one select wakeup per scheduler
   turn, so concurrent clients get their requests batched exactly as the
   loopback transport batches them in tests.

   Client modes (--ping / --stats) dial an existing daemon's socket and
   exercise the same Srv_client library the in-process tests use, which
   makes a two-process smoke test a one-liner:

     rfsd --socket /tmp/rfs.sock &
     rfsd --socket /tmp/rfs.sock --ping --stats *)

open Cmdliner
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Server = Rae_srv.Server
module Srv_client = Rae_srv.Srv_client
module Transport = Rae_srv.Transport

let stop = ref false

(* ---- the select-based transport ---- *)

module Socket_transport = struct
  type link = { fd : Unix.file_descr; wbuf : Buffer.t }

  type t = {
    listen_fd : Unix.file_descr;
    links : (int, link) Hashtbl.t;
    mutable order : int list;
    mutable next_link : int;
    timeout : float;  (* select timeout: the idle turn rate *)
  }

  let create ~path ~timeout =
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 16;
    Unix.set_nonblock fd;
    { listen_fd = fd; links = Hashtbl.create 16; order = []; next_link = 1; timeout }

  let drop t id =
    match Hashtbl.find_opt t.links id with
    | None -> ()
    | Some link ->
        (try Unix.close link.fd with Unix.Unix_error _ -> ());
        Hashtbl.remove t.links id;
        t.order <- List.filter (fun l -> l <> id) t.order

  (* Flush as much buffered output as the socket accepts; the rest stays
     queued for the next writable turn. *)
  let flush_link t id link =
    let s = Buffer.contents link.wbuf in
    if s <> "" then
      match Unix.write_substring link.fd s 0 (String.length s) with
      | n ->
          Buffer.clear link.wbuf;
          if n < String.length s then
            Buffer.add_substring link.wbuf s n (String.length s - n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> drop t id

  let poll t =
    let live = List.filter_map (fun id -> Hashtbl.find_opt t.links id |> Option.map (fun l -> (id, l))) t.order in
    let rds = t.listen_fd :: List.map (fun (_, l) -> l.fd) live in
    let wrs = List.filter_map (fun (_, l) -> if Buffer.length l.wbuf > 0 then Some l.fd else None) live in
    match Unix.select rds wrs [] t.timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    | readable, writable, _ ->
        List.iter
          (fun (id, link) -> if List.memq link.fd writable then flush_link t id link)
          live;
        let evs = ref [] in
        if List.memq t.listen_fd readable then begin
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Unix.set_nonblock fd;
              let id = t.next_link in
              t.next_link <- id + 1;
              Hashtbl.replace t.links id { fd; wbuf = Buffer.create 256 };
              t.order <- t.order @ [ id ];
              evs := Transport.Accepted id :: !evs
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
        end;
        let buf = Bytes.create 65536 in
        List.iter
          (fun (id, link) ->
            if List.memq link.fd readable then
              match Unix.read link.fd buf 0 (Bytes.length buf) with
              | 0 ->
                  drop t id;
                  evs := Transport.Closed id :: !evs
              | n -> evs := Transport.Data (id, Bytes.sub_string buf 0 n) :: !evs
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                ->
                  ()
              | exception Unix.Unix_error _ ->
                  drop t id;
                  evs := Transport.Closed id :: !evs)
          live;
        List.rev !evs

  let send t id s =
    match Hashtbl.find_opt t.links id with
    | None -> ()
    | Some link ->
        Buffer.add_string link.wbuf s;
        flush_link t id link

  let close t id =
    (match Hashtbl.find_opt t.links id with Some link -> flush_link t id link | None -> ());
    drop t id
end

module Drive = Transport.Drive (Socket_transport)

(* ---- client-mode io over a connected socket ---- *)

let io_of_fd fd =
  let send s =
    let n = String.length s in
    let off = ref 0 in
    (try
       while !off < n do
         off := !off + Unix.write_substring fd s !off (n - !off)
       done
     with Unix.Unix_error _ -> ())
  in
  let recv () =
    match Unix.select [ fd ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Some ""
    | [], _, _ -> Some ""
    | _ -> (
        let buf = Bytes.create 65536 in
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n -> Some (Bytes.sub_string buf 0 n)
        | exception Unix.Unix_error _ -> None)
  in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  { Srv_client.io_send = send; io_recv = recv; io_close = close }

let dial path () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Some (io_of_fd fd)
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let run_client path do_ping do_stats do_metrics do_bundles fetch =
  match Srv_client.connect ~dial:(dial path) () with
  | Error msg ->
      Printf.eprintf "rfsd: cannot attach to %s: %s\n" path msg;
      exit 1
  | Ok c ->
      let failed = ref false in
      let err fmt =
        failed := true;
        Printf.eprintf fmt
      in
      Printf.printf "attached: session %d\n" (Srv_client.session c);
      (if do_ping then
         if Srv_client.ping c then Printf.printf "ping: ok\n" else err "ping: FAILED\n");
      (if do_stats then
         match Srv_client.server_stats c with
         | Ok s ->
             Printf.printf "server: %d session(s), %d op(s) served, %d busy, %d recover%s%s\n"
               s.Rae_srv.Wire.ws_sessions s.Rae_srv.Wire.ws_served s.Rae_srv.Wire.ws_busy
               s.Rae_srv.Wire.ws_recoveries
               (if s.Rae_srv.Wire.ws_recoveries = 1 then "y" else "ies")
               (if s.Rae_srv.Wire.ws_degraded then " [DEGRADED]" else "")
         | Error e -> err "stats: error %s\n" (Rae_vfs.Errno.to_string e));
      (if do_metrics then
         match Srv_client.metrics c with
         | Ok text -> print_string text
         | Error e -> err "metrics: error %s\n" (Rae_vfs.Errno.to_string e));
      (if do_bundles then
         match Srv_client.bundles c with
         | Ok [] -> Printf.printf "no bundles\n"
         | Ok names -> List.iter (fun n -> Printf.printf "%s\n" n) names
         | Error e -> err "bundles: error %s\n" (Rae_vfs.Errno.to_string e));
      (match fetch with
      | None -> ()
      | Some name -> (
          match Srv_client.fetch_bundle c name with
          | Ok data -> print_string data
          | Error e -> err "bundle %s: error %s\n" name (Rae_vfs.Errno.to_string e)));
      Srv_client.detach c;
      if !failed then exit 1

(* ---- daemon mode ---- *)

let run_daemon path bug_ids seed batch_max bundle_dir =
  let specs =
    List.map
      (fun id ->
        match Bug_registry.find id with
        | Some s -> s
        | None ->
            Printf.eprintf "unknown bug %s (known: %s)\n" id
              (String.concat ", " (List.map (fun s -> s.Bug_registry.id) Bug_registry.catalog));
            exit 1)
      bug_ids
  in
  let bugs = Bug_registry.arm ~rng:(Rae_util.Rng.create seed) specs in
  let disk =
    Rae_block.Disk.create ~latency:Rae_block.Disk.zero_latency
      ~block_size:Rae_format.Layout.block_size ~nblocks:8192 ()
  in
  let dev = Rae_block.Device.of_disk disk in
  (match Base.mkfs dev ~ninodes:1024 () with Ok () -> () | Error m -> failwith m);
  let base = Result.get_ok (Base.mount ~bugs dev) in
  (* Warm-shadow checkpointing keeps recovery replay O(Δ): clients see
     shorter Busy windows when a bug fires mid-serving. *)
  let policy = { Controller.default_policy with Controller.ckpt_enabled = true } in
  (* Always-on observability: a bounded tracer (the ring cap holds the
     daemon's memory constant no matter how long it serves), the flight
     recorder, and a bundle directory for postmortems. *)
  let tracer = Rae_obs.Tracer.create ~max_events:65536 () in
  let events = Rae_obs.Events.create ~capacity:4096 () in
  let run_id = Printf.sprintf "rfsd-%d-%.0f" (Unix.getpid ()) (Unix.time ()) in
  let ctl =
    Controller.make ~policy ~tracer ~events ?bundle_dir ~run_id ~device:dev base
  in
  let config = { Server.default_config with Server.batch_max } in
  let server = Server.create ~config ctl in
  let reg = Rae_obs.Metrics.create () in
  Controller.register_obs reg ctl;
  Server.register_obs reg server;
  Server.set_metrics_source server (fun () -> Rae_obs.Metrics.to_prometheus reg);
  let transport = Socket_transport.create ~path ~timeout:0.1 in
  let d = Drive.create transport server in
  let handle = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle;
  Printf.printf "rfsd: serving %s (%d bug(s) armed)\n%!" path (List.length specs);
  while not !stop do
    ignore (Drive.tick d)
  done;
  let s = Server.stats server in
  let cs = Controller.stats ctl in
  Printf.printf "rfsd: shutting down: %d conn(s) total, %d op(s) served, %d recover%s.\n"
    s.Server.conns_total s.Server.served cs.Controller.recoveries
    (if cs.Controller.recoveries = 1 then "y" else "ies");
  (try Unix.unlink path with Unix.Unix_error _ -> ())

let run path bug_ids seed batch_max bundle_dir do_ping do_stats do_metrics do_bundles fetch =
  if do_ping || do_stats || do_metrics || do_bundles || fetch <> None then
    run_client path do_ping do_stats do_metrics do_bundles fetch
  else run_daemon path bug_ids seed batch_max bundle_dir

let socket_arg =
  Arg.(
    value & opt string "rfsd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket to serve (or dial).")

let bugs_arg =
  Arg.(
    value & opt (list string) []
    & info [ "bugs" ] ~docv:"IDS" ~doc:"Comma-separated bug ids to arm in the base filesystem.")

let seed_arg = Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Bug-arming seed.")

let batch_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.batch_max
    & info [ "batch-max" ] ~docv:"N" ~doc:"Requests dispatched per scheduler turn.")

let ping_arg =
  Arg.(value & flag & info [ "ping" ] ~doc:"Client mode: attach to a running daemon and ping it.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Client mode: attach to a running daemon and print server stats.")

let bundle_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundle-dir" ] ~docv:"DIR"
        ~doc:
          "Write a postmortem black-box bundle here on every recovery completion and fail-stop \
           entry (daemon mode; omitting the flag disables bundles).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Client mode: fetch and print the daemon's Prometheus metrics exposition.")

let bundles_arg =
  Arg.(
    value & flag
    & info [ "bundles" ] ~doc:"Client mode: list the daemon's black-box bundle names.")

let bundle_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundle" ] ~docv:"NAME"
        ~doc:"Client mode: fetch one black-box bundle by name and print its JSON.")

let cmd =
  Cmd.v
    (Cmd.info "rfsd" ~doc:"Serve an RAE-supervised rfs image over a Unix domain socket")
    Term.(
      const run $ socket_arg $ bugs_arg $ seed_arg $ batch_arg $ bundle_dir_arg $ ping_arg
      $ stats_arg $ metrics_arg $ bundles_arg $ bundle_arg)

let () = exit (Cmd.eval cmd)
