(* debugfs.rfs: read-only inspection of an rfs image.

   Subcommands:
     sb IMAGE            print the superblock
     ls IMAGE PATH       list a directory
     stat IMAGE PATH     print file attributes
     cat IMAGE PATH      print file contents
     journal IMAGE       print journal statistics (tail position)
     stats IMAGE         walk the image and dump metrics (prometheus text)
     timeline FILE.json  validate and pretty-print a Chrome trace from
                         `rae_demo --trace-out`

   All access goes through the shadow filesystem with full runtime checks:
   debugfs doubles as a structure validator. *)

open Cmdliner
module Shadow = Rae_shadowfs.Shadow
module Types = Rae_vfs.Types

let with_image image f =
  match Rae_block.Disk.load image with
  | Error msg ->
      Printf.eprintf "cannot read %s: %s\n" image msg;
      exit 2
  | Ok disk -> f disk (Rae_block.Device.of_disk disk)

let with_shadow image f =
  with_image image (fun _disk dev ->
      match Shadow.attach dev with
      | Error msg ->
          Printf.eprintf "not a valid rfs image: %s\n" msg;
          exit 1
      | Ok sh -> (
          try f sh
          with Shadow.Violation msg ->
            Printf.eprintf "structure violation: %s\n" msg;
            exit 1))

let parse_path s =
  match Rae_vfs.Path.parse s with
  | Ok p -> p
  | Error e ->
      Printf.eprintf "bad path %s: %s\n" s (Format.asprintf "%a" Rae_vfs.Path.pp_error e);
      exit 1

let or_errno = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "%s\n" (Rae_vfs.Errno.to_string e);
      exit 1

let cmd_sb image =
  with_image image (fun _disk dev ->
      match Rae_format.Superblock.decode (Rae_block.Device.read dev 0) with
      | Ok sb -> Format.printf "%a@." Rae_format.Superblock.pp sb
      | Error e ->
          Printf.eprintf "superblock: %s\n" (Rae_format.Superblock.error_to_string e);
          exit 1)

let cmd_ls image path =
  with_shadow image (fun sh ->
      let dir = parse_path path in
      let names = or_errno (Shadow.readdir sh dir) in
      List.iter
        (fun name ->
          let st = or_errno (Shadow.stat sh (Rae_vfs.Path.append dir name)) in
          Printf.printf "%-9s %03o nlink=%d size=%-8d ino=%-4d %s\n"
            (Types.kind_to_string st.Types.st_kind)
            st.Types.st_mode st.Types.st_nlink st.Types.st_size st.Types.st_ino name)
        names)

let cmd_stat image path =
  with_shadow image (fun sh ->
      let st = or_errno (Shadow.stat sh (parse_path path)) in
      Format.printf "%a@." Types.pp_stat st)

let cmd_cat image path =
  with_shadow image (fun sh ->
      let p = parse_path path in
      let st = or_errno (Shadow.stat sh p) in
      let fd = or_errno (Shadow.openf sh p Types.flags_ro) in
      print_string (or_errno (Shadow.pread sh fd ~off:0 ~len:st.Types.st_size)))

let cmd_journal image =
  with_image image (fun _disk dev ->
      match Rae_format.Superblock.decode (Rae_block.Device.read dev 0) with
      | Error e ->
          Printf.eprintf "superblock: %s\n" (Rae_format.Superblock.error_to_string e);
          exit 1
      | Ok sb -> (
          let geo = sb.Rae_format.Superblock.geometry in
          match Rae_journal.Journal.replay dev geo with
          | Ok 0 -> Printf.printf "journal clean (nothing to replay)\n"
          | Ok n -> Printf.printf "journal had %d unreplayed transaction(s) (image NOT modified)\n" n
          | Error msg -> Printf.printf "journal unreadable: %s\n" msg))

let cmd_stats image =
  with_image image (fun _disk dev ->
      let sb =
        match Rae_format.Superblock.decode (Rae_block.Device.read dev 0) with
        | Ok sb -> sb
        | Error e ->
            Printf.eprintf "superblock: %s\n" (Rae_format.Superblock.error_to_string e);
            exit 1
      in
      let sh =
        match Shadow.attach dev with
        | Ok sh -> sh
        | Error msg ->
            Printf.eprintf "not a valid rfs image: %s\n" msg;
            exit 1
      in
      (* Walk the whole tree through the checked shadow reader, counting
         what lives in the image. *)
      let files = ref 0 and dirs = ref 0 and symlinks = ref 0 and bytes = ref 0 in
      let rec walk dir =
        List.iter
          (fun name ->
            let p = Rae_vfs.Path.append dir name in
            let st = or_errno (Shadow.stat sh p) in
            match st.Types.st_kind with
            | Types.Directory ->
                incr dirs;
                walk p
            | Types.Regular ->
                incr files;
                bytes := !bytes + st.Types.st_size
            | Types.Symlink -> incr symlinks)
          (or_errno (Shadow.readdir sh dir))
      in
      (try walk []
       with Shadow.Violation msg ->
         Printf.eprintf "structure violation: %s\n" msg;
         exit 1);
      let reg = Rae_obs.Metrics.create () in
      let g name help v = Rae_obs.Metrics.register_gauge reg ~help name (fun () -> v) in
      g "image_files" "regular files in the image" (float_of_int !files);
      g "image_directories" "directories in the image (root excluded)" (float_of_int !dirs);
      g "image_symlinks" "symlinks in the image" (float_of_int !symlinks);
      g "image_bytes_used" "bytes held by regular files" (float_of_int !bytes);
      g "image_free_blocks" "free data blocks" (float_of_int sb.Rae_format.Superblock.free_blocks);
      g "image_free_inodes" "free inodes" (float_of_int sb.Rae_format.Superblock.free_inodes);
      g "image_mount_count" "recorded mounts" (float_of_int sb.Rae_format.Superblock.mount_count);
      g "image_generation" "superblock generation"
        (Int64.to_float sb.Rae_format.Superblock.generation);
      g "shadow_checks_performed" "runtime checks executed during the walk"
        (float_of_int (Shadow.checks_performed sh));
      g "shadow_device_reads" "device blocks read during the walk"
        (float_of_int (Shadow.device_reads sh));
      print_string (Rae_obs.Metrics.to_prometheus reg))

let cmd_timeline file =
  let contents =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" file msg;
      exit 2
  in
  match Rae_obs.Tracer.validate_chrome contents with
  | Error msg ->
      Printf.eprintf "invalid trace: %s\n" msg;
      exit 1
  | Ok n -> (
      match Rae_obs.Tracer.parse_chrome contents with
      | Error msg ->
          Printf.eprintf "invalid trace: %s\n" msg;
          exit 1
      | Ok evs ->
          Printf.printf "%s: %d events, valid\n" file n;
          (* Re-pair B/E events into an indented span tree with durations. *)
          let stack = ref [] in
          List.iter
            (fun { Rae_obs.Tracer.ph; ev_name; ts_us } ->
              match ph with
              | 'B' -> stack := (ev_name, ts_us) :: !stack
              | 'E' -> (
                  match !stack with
                  | (name, t0) :: rest ->
                      stack := rest;
                      Printf.printf "%s%-24s %10.1f us\n"
                        (String.make (2 * List.length rest) ' ')
                        name (ts_us -. t0)
                  | [] -> ())
              | 'i' ->
                  Printf.printf "%s* %s\n" (String.make (2 * List.length !stack) ' ') ev_name
              | _ -> ())
            evs)

(* Dump the flight-recorder tail embedded in a postmortem black-box
   bundle: one line per event, oldest first, with the non-scalar fields
   the recorder captured (kind, errno, latency, correlation id, ...). *)
let cmd_events file last =
  let json =
    match Rae_obs.Blackbox.read_file file with
    | Error msg ->
        Printf.eprintf "cannot read %s: %s\n" file msg;
        exit 2
    | Ok data -> (
        match Rae_obs.Jsonx.parse data with
        | Error msg ->
            Printf.eprintf "%s: JSON parse error: %s\n" file msg;
            exit 1
        | Ok j -> j)
  in
  let module J = Rae_obs.Jsonx in
  match Option.bind (J.member "events" json) J.to_list_opt with
  | None ->
      Printf.eprintf "%s: no \"events\" list (not a black-box bundle?)\n" file;
      exit 1
  | Some events ->
      let events =
        match last with
        | Some n when n >= 0 && List.length events > n ->
            List.filteri (fun i _ -> i >= List.length events - n) events
        | _ -> events
      in
      List.iter
        (fun ev ->
          let int k =
            match Option.bind (J.member k ev) J.to_int_opt with Some v -> v | None -> 0
          in
          let str k =
            match Option.bind (J.member k ev) J.to_str_opt with Some s -> s | None -> ""
          in
          let fields =
            List.filter_map
              (fun (k, v) ->
                match k with
                | "seq" | "ts_ns" | "kind" -> None
                | _ -> Some (Printf.sprintf "%s=%s" k (J.to_string v)))
              (match J.to_obj_opt ev with Some kvs -> kvs | None -> [])
          in
          Printf.printf "%6d %12d %-16s %s\n" (int "seq") (int "ts_ns") (str "kind")
            (String.concat " " fields))
        events

let image_arg idx = Arg.(required & pos idx (some file) None & info [] ~docv:"IMAGE")
let path_arg idx = Arg.(required & pos idx (some string) None & info [] ~docv:"PATH")

let cmds =
  [
    Cmd.v (Cmd.info "sb" ~doc:"Print the superblock") Term.(const cmd_sb $ image_arg 0);
    Cmd.v (Cmd.info "ls" ~doc:"List a directory") Term.(const cmd_ls $ image_arg 0 $ path_arg 1);
    Cmd.v (Cmd.info "stat" ~doc:"Print file attributes") Term.(const cmd_stat $ image_arg 0 $ path_arg 1);
    Cmd.v (Cmd.info "cat" ~doc:"Print file contents") Term.(const cmd_cat $ image_arg 0 $ path_arg 1);
    Cmd.v (Cmd.info "journal" ~doc:"Inspect journal state") Term.(const cmd_journal $ image_arg 0);
    Cmd.v
      (Cmd.info "stats" ~doc:"Walk the image and dump metrics in prometheus text format")
      Term.(const cmd_stats $ image_arg 0);
    Cmd.v
      (Cmd.info "timeline" ~doc:"Validate and pretty-print a Chrome trace from rae_demo --trace-out")
      Term.(
        const cmd_timeline
        $ Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE.json"));
    Cmd.v
      (Cmd.info "events" ~doc:"Dump the flight-recorder tail from a black-box bundle")
      Term.(
        const cmd_events
        $ Arg.(required & pos 0 (some file) None & info [] ~docv:"BUNDLE.json")
        $ Arg.(
            value
            & opt (some int) None
            & info [ "last" ] ~docv:"N" ~doc:"Only the last N events."));
  ]

let () =
  exit (Cmd.eval (Cmd.group (Cmd.info "rae_debugfs" ~doc:"Inspect rfs images (read-only)") cmds))
