(* rae_demo: a narrated end-to-end demonstration of Robust Alternative
   Execution.  Mounts an in-memory base filesystem with a chosen bug
   armed, runs a workload through the RAE controller, and reports every
   recovery as it happens. *)

open Cmdliner
open Rae_vfs
module Base = Rae_basefs.Base
module Bug_registry = Rae_basefs.Bug_registry
module Controller = Rae_core.Controller
module Report = Rae_core.Report
module W = Rae_workload.Workload

(* Run the workload through the serving layer: one loopback hub, [n]
   client sessions, each with its own seeded stream of the profile,
   issued round-robin so the scheduler actually multiplexes. *)
let run_served ctl registry profile count seed ~clients ~report_recovery =
  let module Srv = Rae_srv.Server in
  let module Loopback = Rae_srv.Loopback in
  let module Client = Rae_srv.Srv_client in
  let server = Srv.create ctl in
  Srv.register_obs registry server;
  let hub = Loopback.create server in
  let n = max 1 clients in
  let per_client = max 1 (count / n) in
  Printf.printf "Serving %d loopback client session(s), ~%d ops each.\n\n" n per_client;
  let cls =
    Array.init n (fun i ->
        match Client.connect ~dial:(Loopback.dial hub) () with
        | Ok c -> c
        | Error msg ->
            Printf.eprintf "client %d failed to attach: %s\n" i msg;
            exit 1)
  in
  let queues =
    Array.init n (fun i ->
        ref (W.ops profile (Rae_util.Rng.create (Int64.add seed (Int64.of_int i))) ~count:per_client))
  in
  let errors = Array.make n 0 in
  let opno = ref 0 in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iteri
      (fun i q ->
        match !q with
        | [] -> ()
        | op :: rest ->
            q := rest;
            progressed := true;
            (match Client.exec cls.(i) op with
            | Error _ -> errors.(i) <- errors.(i) + 1
            | Ok _ -> ());
            report_recovery !opno op;
            incr opno)
      queues
  done;
  Array.iteri
    (fun i c ->
      Printf.printf
        "client %d: session %d, %d error outcome(s), %d busy retries, %d recovery notice(s)%s\n" i
        (Client.session c) errors.(i) (Client.busy_retries c) (Client.recovered_seen c)
        (match Client.degraded c with Some _ -> ", saw DEGRADED" | None -> ""))
    cls;
  let ss = Srv.stats server in
  Printf.printf "Server: %d ops served in %d batches, %d busy, %d frames in, %d frames out.\n\n"
    ss.Srv.served ss.Srv.batches ss.Srv.busy ss.Srv.frames_in ss.Srv.frames_out;
  Array.iter Client.detach cls

let run bug_ids profile_name count seed trace_out metrics_dump serve clients =
  let profile =
    match W.profile_of_name profile_name with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown profile %s (known: %s)\n" profile_name
          (String.concat ", " (List.map W.profile_name W.all_profiles));
        exit 1
  in
  let specs =
    List.map
      (fun id ->
        match Bug_registry.find id with
        | Some s -> s
        | None ->
            Printf.eprintf "unknown bug %s (known: %s)\n" id
              (String.concat ", " (List.map (fun s -> s.Bug_registry.id) Bug_registry.catalog));
            exit 1)
      bug_ids
  in
  let bugs = Bug_registry.arm ~rng:(Rae_util.Rng.create seed) specs in
  (* With a trace sink attached, run against the simulated device latency so
     span durations reflect device time rather than collapsing to ~0. *)
  let latency =
    if trace_out <> None then Rae_block.Disk.default_latency else Rae_block.Disk.zero_latency
  in
  let disk =
    Rae_block.Disk.create ~latency ~block_size:Rae_format.Layout.block_size ~nblocks:8192 ()
  in
  let dev = Rae_block.Device.of_disk disk in
  (* Timeline clock: simulated device time plus CPU time, so spans order
     correctly and CPU-only phases still have extent. *)
  let clock () =
    Int64.add
      (Rae_util.Vclock.now (Rae_block.Disk.clock disk))
      (Int64.of_float (Sys.time () *. 1e9))
  in
  let tracer = Rae_obs.Tracer.create ~clock () in
  if trace_out <> None then Rae_obs.Tracer.enable tracer;
  (match Base.mkfs dev ~ninodes:1024 () with Ok () -> () | Error m -> failwith m);
  let base = Result.get_ok (Base.mount ~bugs dev) in
  let ctl = Controller.make ~tracer ~device:dev base in
  let registry = Rae_obs.Metrics.create () in
  Controller.register_obs registry ctl;
  Printf.printf "Mounted an rfs image with %d bug(s) armed: %s\n" (List.length specs)
    (String.concat ", " bug_ids);
  Printf.printf "Running %d '%s' operations through the RAE controller...\n\n" count profile_name;
  let seen_recoveries = ref 0 in
  let report_recovery i op =
    let s = Controller.stats ctl in
    if s.Controller.recoveries > !seen_recoveries then begin
      seen_recoveries := s.Controller.recoveries;
      match Controller.last_recovery ctl with
      | Some r ->
          Printf.printf "op %5d  %s\n" i (Op.to_string op);
          Format.printf "          %a@.@." Report.pp_recovery r
      | None -> ()
    end
  in
  if serve then run_served ctl registry profile count seed ~clients ~report_recovery
  else
    List.iteri
      (fun i op ->
        ignore (Controller.exec ctl op);
        report_recovery i op)
      (W.ops profile (Rae_util.Rng.create seed) ~count);
  let s = Controller.stats ctl in
  Printf.printf "Done: %d ops, %d recoveries (%d failed), %d discrepancies reported.\n"
    s.Controller.ops s.Controller.recoveries s.Controller.recoveries_failed
    s.Controller.discrepancies;
  (match Controller.degraded ctl with
  | Some reason -> Printf.printf "Controller DEGRADED: %s\n" reason
  | None ->
      ignore (Controller.sync ctl);
      let report = Rae_fsck.Fsck.check_device dev in
      Printf.printf "Final image: %s\n"
        (if Rae_fsck.Fsck.clean report then "fsck clean" else "fsck FOUND ERRORS"));
  Printf.printf "Base filesystem executed %d ops, %d commits; window high-water %d ops.\n"
    (Base.stats base).Base.ops_executed (Base.stats base).Base.commits s.Controller.max_window;
  (match trace_out with
  | Some path ->
      Rae_obs.Tracer.write_chrome tracer path;
      let n = List.length (Rae_obs.Tracer.events tracer) in
      Printf.printf "Wrote %d trace events to %s (open in chrome://tracing or ui.perfetto.dev).\n" n
        path
  | None -> ());
  if metrics_dump then print_string (Rae_obs.Metrics.to_prometheus registry)

let bugs_arg =
  Arg.(
    value
    & opt (list string) [ "dx-hash-panic"; "fsync-deadlock" ]
    & info [ "bugs" ] ~docv:"IDS" ~doc:"Comma-separated bug ids to arm (see rae_demo --help).")

let profile = Arg.(value & opt string "varmail" & info [ "profile" ] ~docv:"NAME" ~doc:"Workload profile.")
let count = Arg.(value & opt int 2000 & info [ "n" ] ~docv:"N" ~doc:"Operation count.")
let seed = Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run (recovery phases, commits, \
           destages) to $(docv), viewable in chrome://tracing or Perfetto.")

let metrics_dump =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Dump the metrics registry in prometheus text format at exit.")

let serve_flag =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Run the workload through the rae_srv serving layer — in-memory loopback client \
           sessions multiplexed onto the controller — instead of calling it directly.")

let clients_arg =
  Arg.(
    value & opt int 4
    & info [ "clients" ] ~docv:"N" ~doc:"Number of loopback client sessions with $(b,--serve).")

let cmd =
  Cmd.v
    (Cmd.info "rae_demo"
       ~doc:"Demonstrate transparent recovery from injected filesystem bugs")
    Term.(
      const run $ bugs_arg $ profile $ count $ seed $ trace_out $ metrics_dump $ serve_flag
      $ clients_arg)

let () = exit (Cmd.eval cmd)
